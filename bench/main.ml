(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5), runs the ablations described in
   DESIGN.md, and measures timings with bechamel.

   Usage: dune exec bench/main.exe [-- SECTION ...]
   Sections: tables figures solidarity ablations timings sweep symbolic
   server all (default: all). *)

module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Baseline = Pet_minimize.Baseline
module Lattice = Pet_minimize.Lattice
module Dot = Pet_minimize.Dot
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium
module Solidarity = Pet_game.Solidarity

let section title =
  Fmt.pr "@.==========================================================@.";
  Fmt.pr "== %s@." title;
  Fmt.pr "==========================================================@."

let hcov = lazy (Pet_casestudies.Hcov.exposure ())
let rsa = lazy (Pet_casestudies.Rsa.exposure ())
let running = lazy (Pet_casestudies.Running.exposure ())

let atlas_of exposure = Atlas.build (Engine.create ~backend:Engine.Bdd exposure)

let hcov_atlas = lazy (atlas_of (Lazy.force hcov))
let rsa_atlas = lazy (atlas_of (Lazy.force rsa))
let running_atlas = lazy (atlas_of (Lazy.force running))

let time_once f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

(* --- Table 1: the H-cov encoding -------------------------------------------- *)

let table1 () =
  section "Table 1: predicates and rules for H-cov";
  List.iter
    (fun (name, description) -> Fmt.pr "%-4s %s@." name description)
    Pet_casestudies.Hcov.predicates;
  Fmt.pr "@.%a@." Pet_rules.Spec.print (Lazy.force hcov);
  Fmt.pr
    "(the constraint p10 -> !p1 & !p3 is the calibration rule Table 1 \
     omits; see EXPERIMENTS.md)@."

(* --- Table 2: MAS eligible in H-cov and RSA ----------------------------------- *)

let table2 () =
  section "Table 2: MAS eligible in H-cov and RSA";
  let describe name atlas paper =
    Fmt.pr "--- %s ---@.%a" name Atlas.pp_summary atlas;
    Fmt.pr "(paper: %s)@.@." paper
  in
  describe "H-cov" (Lazy.force hcov_atlas)
    "6 MAS; 1560 valuations; 2 to 6 predicates; 1272/280/8 with 1/2/3 MAS \
     -- exact match";
  describe "RSA (synthetic encoding)" (Lazy.force rsa_atlas)
    "24 MAS; 1296 valuations; 9 to 13 predicates; 368/526/144/172/66/14/6 \
     with 1/2/3/4/6/8/12 MAS -- shape reproduction, see EXPERIMENTS.md"

(* --- Tables 3 and 4: payoffs per MAS -------------------------------------------- *)

(* The paper's PO_SM column prints crowd sizes k (Definition 4.5's payoff
   is k - 1); we print k to mirror the table layout. *)
let payoff_table atlas =
  let profile = Strategy.compute ~payoff:Payoff.Blank atlas in
  Fmt.pr "%-20s| %8s | %17s | %12s@." "MAS" "players" "PO_SM" "PO_blank";
  for m = 0 to Atlas.mas_count atlas - 1 do
    let potential = Atlas.players_of_mas atlas m in
    let forced = Atlas.forced_players_of_mas atlas m in
    let crowd = Profile.crowd profile m in
    let blank c = Payoff.value atlas Payoff.Blank ~mas:m ~crowd:c in
    Fmt.pr "%-20s| %8d | %5d (%4d,%5d) | %3.0f (%2.0f,%2.0f)@."
      (Partial.to_string (Atlas.mas atlas m).A1.mas)
      (List.length potential) (List.length crowd) (List.length forced)
      (List.length potential) (blank crowd) (blank forced) (blank potential)
  done;
  profile

let minimization_ratio atlas profile =
  let n = Atlas.player_count atlas in
  let xp_size = Universe.size (Partial.universe (Atlas.mas atlas 0).A1.mas) in
  let blanks =
    List.fold_left
      (fun acc i ->
        acc + Partial.blank_count (Atlas.mas atlas (Profile.move_of profile i)).A1.mas)
      0 (List.init n Fun.id)
  in
  100. *. float_of_int blanks /. float_of_int (n * xp_size)

let table3 () =
  section "Table 3: the payoffs for the selected MAS (H-cov)";
  let atlas = Lazy.force hcov_atlas in
  let profile = payoff_table atlas in
  Fmt.pr "@.paper rows (players | PO_SM | PO_blank):@.";
  List.iter (Fmt.pr "  %s@.")
    [
      "0__________1 | 1024 | 1024 (744,1024) | 10 (10,10)";
      "0_0__1___11_ |  128 |   64 (56,128)   |  6 (6,7)";
      "0_0_10__1___ |  128 |   64 (64,128)   |  6 (6,7)";
      "0_0_1110____ |   64 |   24 (24,64)    |  5 (5,6)";
      "0_110_______ |  256 |  128 (128,256)  |  7 (7,8)";
      "110_0_______ |  256 |  256 (256,256)  |  8 (8,8)";
    ];
  Fmt.pr "@.average minimization: %.1f%% of predicates removed (paper: over 70%%)@."
    (minimization_ratio atlas profile);
  Fmt.pr "equilibrium is Nash: %b@."
    (Equilibrium.is_nash profile Payoff.Blank)

let table4 () =
  section "Table 4: the payoffs for the selected MAS (RSA, synthetic)";
  let atlas = Lazy.force rsa_atlas in
  let profile = payoff_table atlas in
  Fmt.pr
    "@.(the paper's 24 rows come from its unpublished rule set; this \
     synthetic encoding reproduces the shape -- see EXPERIMENTS.md)@.";
  Fmt.pr "average minimization: %.1f%% of predicates removed (paper: ~30%%)@."
    (minimization_ratio atlas profile);
  let refined, converged = Equilibrium.refine profile Payoff.Blank in
  Fmt.pr "Algorithm 2 alone is Nash: %b; after best-response refinement: %b@."
    (Equilibrium.is_nash profile Payoff.Blank)
    (converged && Equilibrium.is_nash refined Payoff.Blank)

(* --- Figures ------------------------------------------------------------------------ *)

let figures () =
  section "Figure 1: the accurate-subvaluation digraph (running example)";
  let atlas = Lazy.force running_atlas in
  let lattice = Lattice.build atlas in
  Fmt.pr "%a@." Lattice.pp lattice;
  Fmt.pr "--- DOT ---@.%s@." (Dot.lattice lattice);
  section "Figure 2: the choices of user u_111";
  let u3 = Exposure.xp (Lazy.force running) in
  let v111 = Total.of_string u3 "111" in
  let players, mas = Dot.component atlas v111 in
  Fmt.pr "component players: %a@."
    Fmt.(list ~sep:sp string)
    (List.map (fun i -> Total.to_string (Atlas.player atlas i)) players);
  Fmt.pr "component MAS: %a@."
    Fmt.(list ~sep:sp string)
    (List.map (fun i -> Partial.to_string (Atlas.mas atlas i).A1.mas) mas);
  Fmt.pr "--- DOT ---@.%s@." (Dot.choices atlas v111)

(* --- Solidarity (Section 7) ----------------------------------------------------------- *)

let solidarity () =
  section "Solidarity (Section 7, future work): H-cov";
  let atlas = Lazy.force hcov_atlas in
  let profile = Strategy.compute atlas in
  for m = 0 to Atlas.mas_count atlas - 1 do
    match Solidarity.improve ~max_recruits:1 profile ~mas:m with
    | Some r ->
      Fmt.pr "%s: %a@."
        (Partial.to_string (Atlas.mas atlas m).A1.mas)
        Solidarity.pp r;
      List.iter
        (fun (rec_ : Solidarity.recruit) ->
          Fmt.pr "    volunteer %s moves from %s (their PO_blank %.0f -> %.0f)@."
            (Total.to_string (Atlas.player atlas rec_.Solidarity.player))
            (Partial.to_string
               (Atlas.mas atlas rec_.Solidarity.previous_mas).A1.mas)
            rec_.Solidarity.previous_payoff rec_.Solidarity.new_payoff)
        r.Solidarity.recruits
    | None -> ()
  done;
  Fmt.pr
    "(paper: one extra player lifts MAS 0_0_1110____ from PO_blank 5 to 6 \
     for its 24 forced players)@.";
  let plan = Solidarity.plan ~budget:4 profile in
  Fmt.pr
    "@.coordinated plan (budget 4 volunteers): floor PO_blank %.0f -> %.0f \
     in %d step(s), %d volunteer(s) moved@."
    plan.Solidarity.floor_before plan.Solidarity.floor_after
    (List.length plan.Solidarity.steps)
    plan.Solidarity.recruited;
  (* Probabilistic variant (the mixed-strategy prototype): potential
     players of the worst move play it 30% of the time. *)
  let m4 =
    Option.get
      (Atlas.find_mas atlas
         (Partial.of_string
            (Exposure.xp (Lazy.force hcov))
            "0_0_1110____"))
  in
  let victim = List.hd (Atlas.forced_players_of_mas atlas m4) in
  let volunteers =
    List.filter
      (fun i -> Profile.move_of profile i <> m4)
      (Atlas.players_of_mas atlas m4)
  in
  let mixed =
    List.fold_left
      (fun acc i -> Pet_game.Mixed.perturb acc ~player:i ~mas:m4 ~epsilon:0.3)
      (Pet_game.Mixed.of_pure profile)
      volunteers
  in
  Fmt.pr
    "probabilistic variant: each of the %d potential players mixes 30%% \
     onto the worst move; a forced player's expected PO_blank: 5 -> %.2f@."
    (List.length volunteers)
    (Pet_game.Mixed.expected_payoff ~samples:100 ~seed:7 mixed ~player:victim
       Payoff.Blank)

(* --- Ablations -------------------------------------------------------------------------- *)

let mode_name = function
  | A1.Chain -> "chain (paper)"
  | A1.Entail -> "entail"
  | A1.Exact -> "exact"

let ablation_modes () =
  section "Ablation: MAS closure modes (chain / entail / exact)";
  let study name exposure sample =
    let engine = Engine.create ~backend:Engine.Bdd exposure in
    let population = Exposure.eligible exposure in
    let population =
      match sample with
      | None -> population
      | Some k -> List.filteri (fun i _ -> i < k) population
    in
    Fmt.pr "--- %s (%d applicants) ---@." name (List.length population);
    List.iter
      (fun mode ->
        let (distinct, total_domain, count), dt =
          time_once (fun () ->
              List.fold_left
                (fun (distinct, total_domain, count) v ->
                  let mas = A1.mas_of ~mode engine v in
                  let distinct =
                    List.fold_left
                      (fun acc (c : A1.choice) ->
                        if List.exists (Partial.equal c.A1.mas) acc then acc
                        else c.A1.mas :: acc)
                      distinct mas
                  in
                  ( distinct,
                    total_domain
                    + List.fold_left
                        (fun a (c : A1.choice) ->
                          a + Partial.domain_size c.A1.mas)
                        0 mas,
                    count + List.length mas ))
                ([], 0, 0) population)
        in
        Fmt.pr
          "%-14s %3d distinct MAS, %.2f predicates per MAS on average, %.3fs@."
          (mode_name mode) (List.length distinct)
          (float_of_int total_domain /. float_of_int (max 1 count))
          dt)
      [ A1.Chain; A1.Entail; A1.Exact ]
  in
  study "running example" (Lazy.force running) None;
  study "H-cov (sample)" (Lazy.force hcov) (Some 100);
  Fmt.pr
    "(all three modes are privacy-equivalent; exact MAS are smaller \
     because the closure literals an attacker deduces anyway are left \
     implicit)@."

let ablation_baseline () =
  section "Ablation: PST-2012 baseline vs Algorithm 1 (H-cov population)";
  let exposure = Lazy.force hcov in
  let atlas = Lazy.force hcov_atlas in
  let engine = Atlas.engine atlas in
  let profile = Strategy.compute atlas in
  let population = Exposure.eligible exposure in
  let claimed, leaked, achieved, n =
    List.fold_left
      (fun (claimed, leaked, achieved, n) v ->
        let r = Baseline.minimize engine v in
        let mas = Profile.move_of_valuation profile v in
        let m = Option.get (Atlas.find_mas atlas mas.A1.mas) in
        let po =
          Payoff.value atlas Payoff.Blank ~mas:m ~crowd:(Profile.crowd profile m)
        in
        ( claimed + r.Baseline.claimed_blanks,
          leaked + Baseline.rule_level_leak engine r.Baseline.disclosed,
          achieved +. po,
          n + 1 ))
      (0, 0, 0., 0) population
  in
  Fmt.pr "applicants: %d@." n;
  Fmt.pr "baseline claims %.2f hidden predicates per applicant@."
    (float_of_int claimed /. float_of_int n);
  Fmt.pr
    "  of which %.2f are deducible from the rules alone (overestimated \
     privacy, the flaw of [3])@."
    (float_of_int leaked /. float_of_int n);
  Fmt.pr
    "Algorithm 1 + Algorithm 2 deliver %.2f genuinely hidden predicates \
     per applicant, with the attacker fully accounted for@."
    (achieved /. float_of_int n)

(* --- Timings (bechamel) -------------------------------------------------------------------- *)

let run_bechamel tests =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ ns ] when Float.is_finite ns ->
        if ns > 1e6 then Fmt.pr "%-46s %10.3f ms/run@." name (ns /. 1e6)
        else Fmt.pr "%-46s %10.1f us/run@." name (ns /. 1e3)
      | _ -> Fmt.pr "%-46s (no estimate)@." name)
    rows

let timings () =
  section "Timings (bechamel; paper: atlas = minutes in Java, payoffs = seconds)";
  let open Bechamel in
  let hcov_exposure = Lazy.force hcov in
  let xp = Exposure.xp hcov_exposure in
  let w = Partial.of_assoc xp [ ("p5", true); ("p6", true) ] in
  let engines =
    List.map
      (fun backend -> (backend, Engine.create ~backend hcov_exposure))
      [ Engine.Brute; Engine.Sat; Engine.Bdd ]
  in
  let entail_tests =
    List.map
      (fun (backend, engine) ->
        Test.make
          ~name:(Fmt.str "entailment/hcov/%a" Engine.pp_backend backend)
          (Staged.stage (fun () ->
               ignore (Engine.entails_benefit engine w "b1"))))
      engines
  in
  let hcov_engine = Engine.create ~backend:Engine.Bdd hcov_exposure in
  let rsa_engine = Engine.create ~backend:Engine.Bdd (Lazy.force rsa) in
  let alice = Pet_casestudies.Hcov.alice () in
  let rsa_applicant = Pet_casestudies.Rsa.sample_applicant () in
  let algorithm1_tests =
    [
      Test.make ~name:"algorithm1/hcov/alice"
        (Staged.stage (fun () -> ignore (A1.mas_of hcov_engine alice)));
      Test.make ~name:"algorithm1/rsa/applicant"
        (Staged.stage (fun () -> ignore (A1.mas_of rsa_engine rsa_applicant)));
    ]
  in
  let atlas_tests =
    [
      Test.make ~name:"atlas/running"
        (Staged.stage (fun () -> ignore (atlas_of (Lazy.force running))));
      Test.make ~name:"atlas/hcov"
        (Staged.stage (fun () -> ignore (atlas_of hcov_exposure)));
    ]
  in
  let strategy_tests =
    let hc = Lazy.force hcov_atlas and ra = Lazy.force rsa_atlas in
    [
      Test.make ~name:"algorithm2/hcov"
        (Staged.stage (fun () -> ignore (Strategy.compute hc)));
      Test.make ~name:"algorithm2/rsa"
        (Staged.stage (fun () -> ignore (Strategy.compute ra)));
    ]
  in
  run_bechamel
    (Test.make_grouped ~name:"pet"
       (entail_tests @ algorithm1_tests @ atlas_tests @ strategy_tests));
  (* The RSA atlas is too slow for bechamel's sampling; time it directly. *)
  let _, dt = time_once (fun () -> atlas_of (Lazy.force rsa)) in
  Fmt.pr "%-46s %10.3f ms/run (single run)@." "pet/atlas/rsa" (dt *. 1e3);
  (* Per-applicant consent-report throughput once the provider state is
     built — the serving-path cost of the PET (paper: "millions of forms
     per year"). *)
  let provider = Pet_pet.Workflow.provider ~backend:Engine.Bdd hcov_exposure in
  let count = ref 0 in
  let population = Exposure.eligible hcov_exposure in
  let _, dt =
    time_once (fun () ->
        List.iter
          (fun v ->
            match Pet_pet.Workflow.report_for provider v with
            | Ok _ -> incr count
            | Error _ -> ())
          population)
  in
  Fmt.pr "consent reports (H-cov, provider amortized): %.0f reports/s@."
    (float_of_int !count /. dt)

(* --- Scalability sweep ------------------------------------------------------------------------ *)

let sweep () =
  section "Scalability sweep: random exposure problems (atlas vs strategy)";
  Fmt.pr "%4s %6s %8s %8s %12s %12s@." "n" "MAS" "players" "choices"
    "atlas (s)" "strategy (s)";
  List.iter
    (fun n ->
      let exposure = Pet_rules.Generate.exposure ~config:{ Pet_rules.Generate.default with predicates = n } ~seed:42 () in
      let engine = Engine.create ~backend:Engine.Bdd exposure in
      let atlas, atlas_dt = time_once (fun () -> Atlas.build engine) in
      let _, strat_dt = time_once (fun () -> Strategy.compute atlas) in
      let max_choices =
        List.fold_left
          (fun acc (k, _) -> max acc k)
          0 (Atlas.choice_distribution atlas)
      in
      Fmt.pr "%4d %6d %8d %8d %12.3f %12.3f@." n (Atlas.mas_count atlas)
        (Atlas.player_count atlas) max_choices atlas_dt strat_dt)
    [ 6; 8; 10; 12; 14 ];
  Fmt.pr
    "(the paper reports minutes for Algorithm 1 and seconds for \
     Algorithm 2 on a Java prototype; the shape -- atlas construction \
     dominating, payoff evaluation cheap -- is reproduced)@."

(* --- Symbolic atlas -------------------------------------------------------------------------------- *)

let symbolic () =
  section "Symbolic atlas: Table 2/3 statistics without enumeration";
  Fmt.pr "%-10s %12s %12s %8s@." "case" "atlas (s)" "symbolic (s)" "agree";
  List.iter
    (fun (name, exposure) ->
      let atlas, atlas_dt =
        time_once (fun () ->
            Atlas.build (Engine.create ~backend:Engine.Bdd exposure))
      in
      let sym, sym_dt =
        time_once (fun () -> Pet_minimize.Symbolic.build exposure)
      in
      let agree =
        Atlas.mas_count atlas = Pet_minimize.Symbolic.mas_count sym
        && Atlas.player_count atlas
           = Pet_minimize.Symbolic.valuation_count sym
      in
      Fmt.pr "%-10s %12.3f %12.3f %8b@." name atlas_dt sym_dt agree)
    [
      ("running", Lazy.force running);
      ("hcov", Lazy.force hcov);
      ("loan", Pet_casestudies.Loan.exposure ());
      ("rsa", Lazy.force rsa);
    ];
  Fmt.pr
    "@.scaling on random 3-benefit problems (enumeration is infeasible \
     past ~22 predicates):@.";
  Fmt.pr "%4s %6s %16s %12s@." "n" "MAS" "valuations" "symbolic (s)";
  List.iter
    (fun n ->
      let exposure =
        Pet_rules.Generate.exposure
          ~config:
            { Pet_rules.Generate.default with
              Pet_rules.Generate.predicates = n;
              benefits = 3;
            }
          ~seed:42 ()
      in
      let sym, dt =
        time_once (fun () -> Pet_minimize.Symbolic.build exposure)
      in
      let max_choices =
        List.fold_left
          (fun acc (k, _) -> max acc k)
          0
          (Pet_minimize.Symbolic.choice_distribution sym)
      in
      let eq = Pet_minimize.Symbolic.equilibrium sym in
      Fmt.pr "%4d %6d %16d %12.3f   (up to %d choices; equilibrium nash=%b)@."
        n
        (Pet_minimize.Symbolic.mas_count sym)
        (Pet_minimize.Symbolic.valuation_count sym)
        dt max_choices eq.Pet_minimize.Symbolic.nash)
    [ 14; 20; 24; 28; 32; 40 ]

(* --- Server: service-loop throughput ------------------------------------------------------------- *)

(* Replay whole populations through the collection service (the same
   code path as `pet serve`): for each respondent a new_session by
   digest, a consent report, a choice and a submission — measuring
   end-to-end requests/second including JSON decode/encode, and the
   registry hit rate across sessions. *)
(* Machine-readable results for CI trending: each section that feeds a
   dashboard writes a BENCH_<name>.json next to the human output. *)
let write_json file json =
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (Pet_pet.Json.to_string json);
      Out_channel.output_char oc '\n');
  Fmt.pr "wrote %s@." file

(* BENCH_server.json is co-owned by the [server] and [tenants] sections;
   each replaces only its own top-level keys so running one section does
   not wipe the other's baseline figures. *)
let merge_json file fields =
  let existing =
    match In_channel.with_open_text file In_channel.input_all with
    | exception Sys_error _ -> []
    | contents -> (
      match Pet_pet.Json.parse contents with
      | Ok (Pet_pet.Json.Obj old) -> old
      | Ok _ | Error _ -> [])
  in
  let keys = List.map fst fields in
  let kept = List.filter (fun (k, _) -> not (List.mem k keys)) existing in
  write_json file (Pet_pet.Json.Obj (kept @ fields))

(* One full service workload (shared by the [server] and [obs]
   sections): publish once, then per respondent a new_session by digest,
   a consent report, a choice and a submission. Returns the summary
   JSON, the measured requests/second, and the service (so callers can
   read its metrics afterwards). *)
let server_case ?backend ?compiled name exposure respondents =
  let escape s = Pet_pet.Json.to_string (Pet_pet.Json.String s) in
    let tick = ref 0. in
    let service =
      Pet_server.Service.create ?backend ?compiled ~capacity:4 ~ttl:0.
        ~now:(fun () -> tick := !tick +. 1.; !tick)
        ()
    in
    let text = Pet_rules.Spec.to_string exposure in
    let _, publish_dt =
      time_once (fun () ->
          Pet_server.Service.handle_line service
            (Printf.sprintf
               {|{"pet":1,"id":0,"method":"publish_rules","params":{"rules":%s}}|}
               (escape text)))
    in
    let digest = Pet_server.Registry.digest text in
    let population = Array.of_list (Exposure.eligible exposure) in
    let errors = ref 0 in
    let requests = ref 0 in
    let send line =
      incr requests;
      let response = Pet_server.Service.handle_line service line in
      (* Error responses carry an "error" object instead of "ok". *)
      match Pet_pet.Json.parse response with
      | Ok obj when Pet_pet.Json.member "ok" obj <> None -> ()
      | _ -> incr errors
    in
    let _, dt =
      time_once (fun () ->
          for i = 0 to respondents - 1 do
            let v = population.(i mod Array.length population) in
            let session = Printf.sprintf "s%d" i in
            send
              (Printf.sprintf
                 {|{"pet":1,"method":"new_session","params":{"digest":%s}}|}
                 (escape digest));
            send
              (Printf.sprintf
                 {|{"pet":1,"method":"get_report","params":{"session":%s,"valuation":%s}}|}
                 (escape session)
                 (escape (Total.to_string v)));
            send
              (Printf.sprintf
                 {|{"pet":1,"method":"choose_option","params":{"session":%s,"option":0}}|}
                 (escape session));
            send
              (Printf.sprintf
                 {|{"pet":1,"method":"submit_form","params":{"session":%s}}|}
                 (escape session))
          done)
    in
    let stats = Pet_server.Service.registry_stats service in
    let hit_rate =
      100.
      *. float_of_int stats.Pet_server.Registry.hits
      /. float_of_int (stats.Pet_server.Registry.hits + stats.Pet_server.Registry.misses)
    in
    Fmt.pr
      "%-8s publish (compile): %.3fs; %d respondents, %d requests in %.3fs \
       = %.0f requests/s; %d errors; registry hit rate %.1f%%@."
      name publish_dt respondents !requests dt
      (float_of_int !requests /. dt)
      !errors hit_rate;
  let rps = float_of_int !requests /. dt in
  let json =
    Pet_pet.Json.Obj
      [
        ("case", Pet_pet.Json.String name);
        ("respondents", Pet_pet.Json.Int respondents);
        ("requests", Pet_pet.Json.Int !requests);
        ("errors", Pet_pet.Json.Int !errors);
        ("publish_compile_s", Pet_pet.Json.Float publish_dt);
        ("seconds", Pet_pet.Json.Float dt);
        ("requests_per_s", Pet_pet.Json.Float rps);
        ("cache_hit_rate", Pet_pet.Json.Float (hit_rate /. 100.));
      ]
  in
  (json, rps, service)

(* --- TCP scaling: domains vs durable throughput -------------------------------------

   The scenario the sharded transport exists for: concurrent clients
   each opening a session (one durable event per request, fsync ON).
   A single domain is fsync-bound — every request pays the full
   flush+fsync alone. With N domains the requests land on N shards
   whose appends meet in the single writer domain and share one fsync
   per batch, so throughput scales with the batch size even on one
   core (the fsync wait is mostly CPU-idle time). *)

let tcp_temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pet_bench_tcp_%d_%d" (Unix.getpid ()) !counter)
    in
    let rec remove path =
      if Sys.is_directory path then begin
        Array.iter
          (fun entry -> remove (Filename.concat path entry))
          (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
    in
    if Sys.file_exists dir then remove dir;
    dir

let tcp_config ~clients ~per_client domains =
  (* A roomy minor heap keeps stop-the-world minor collections — which
     every domain must join, painful when domains outnumber cores —
     out of the measurement. *)
  Gc.set { (Gc.get ()) with minor_heap_size = 4 * 1024 * 1024 };
  let dir = tcp_temp_dir () in
  match Pet_store.Store.open_dir ~fsync:true dir with
  | Error m -> failwith ("tcp bench: " ^ m)
  | Ok (store, _) ->
    let server =
      match
        Pet_net.Server.start ~store ~sweep_interval:0. ~domains ~port:0
          ~now:Unix.gettimeofday ()
      with
      | Ok server -> server
      | Error m -> failwith ("tcp bench: " ^ m)
    in
    let port = Pet_net.Server.port server in
    let connect () =
      let fd = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
      Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
      (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
    in
    let text = Pet_rules.Spec.to_string (Lazy.force running) in
    let escape s = Pet_pet.Json.to_string (Pet_pet.Json.String s) in
    let new_session_line =
      Printf.sprintf
        {|{"pet":1,"method":"new_session","params":{"digest":%s}}|}
        (escape (Pet_server.Registry.digest text))
    in
    let errors = Atomic.make 0 in
    (* Substring check, not a JSON parse: the clients share the machine
       with the server, so client-side CPU is overhead under test. Every
       error response carries an "error" object and no "ok". *)
    let is_ok response =
      let h = String.length response in
      let rec go i =
        i + 4 <= h
        && ((response.[i] = '"'
            && response.[i + 1] = 'o'
            && response.[i + 2] = 'k'
            && response.[i + 3] = '"')
           || go (i + 1))
      in
      go 0
    in
    let request ic oc line =
      output_string oc line;
      output_char oc '\n';
      flush oc;
      match In_channel.input_line ic with
      | Some response when is_ok response -> ()
      | _ -> Atomic.incr errors
    in
    (* Warm up: publish once, then enough sessions that every shard has
       compiled its engine before the timed window. *)
    let fd, ic, oc = connect () in
    request ic oc
      (Printf.sprintf
         {|{"pet":1,"id":0,"method":"publish_rules","params":{"rules":%s}}|}
         (escape text));
    for _ = 1 to 2 * domains do
      request ic oc new_session_line
    done;
    Unix.close fd;
    let before =
      match Pet_net.Server.batch_stats server with
      | Some stats -> stats
      | None -> failwith "tcp bench: no batch stats"
    in
    (* Pipelined client: fire every request, then read every response
       (the protocol correlates them by id; this client only counts
       errors). Pipelining is what keeps all shards loaded at once, so
       the writer's group commits actually batch. *)
    let client () =
      let fd, _ic, oc = connect () in
      for _ = 1 to per_client do
        output_string oc new_session_line;
        output_char oc '\n'
      done;
      flush oc;
      (* Bulk read: count response lines and "error" keys in one pass —
         no per-line allocation, the cheapest correct client possible. *)
      let buf = Bytes.create 65536 in
      let seen = ref 0 and bad = ref 0 in
      while !seen < per_client do
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 ->
          bad := !bad + (per_client - !seen);
          seen := per_client
        | n ->
          for i = 0 to n - 1 do
            match Bytes.unsafe_get buf i with
            | '\n' -> incr seen
            | 'r' ->
              (* 'r' only ever appears inside "error" in these replies *)
              if i + 3 < n
                 && Bytes.unsafe_get buf (i + 1) = 'r'
                 && Bytes.unsafe_get buf (i + 2) = 'o'
                 && Bytes.unsafe_get buf (i + 3) = 'r'
              then incr bad
            | _ -> ()
          done
      done;
      if !bad > 0 then Atomic.fetch_and_add errors !bad |> ignore;
      Unix.close fd
    in
    (* Wall clock, not [time_once]'s CPU clock: the point of group
       commit is overlapping the fsync's idle wait, which CPU time
       cannot see. *)
    let t0 = Unix.gettimeofday () in
    List.init clients (fun _ -> Thread.create client ())
    |> List.iter Thread.join;
    let dt = Unix.gettimeofday () -. t0 in
    let after =
      match Pet_net.Server.batch_stats server with
      | Some stats -> stats
      | None -> failwith "tcp bench: no batch stats"
    in
    Pet_net.Server.stop server;
    Pet_store.Store.close store;
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    let requests = clients * per_client in
    let rps = float_of_int requests /. dt in
    let batches = after.Pet_net.Group_commit.batches - before.Pet_net.Group_commit.batches in
    let events = after.Pet_net.Group_commit.events - before.Pet_net.Group_commit.events in
    let avg_batch =
      if batches = 0 then 0. else float_of_int events /. float_of_int batches
    in
    Fmt.pr
      "tcp      %d domain(s): %d clients x %d sessions = %d requests in \
       %.3fs = %.0f requests/s; %d errors; %d fsync batches, avg %.1f \
       events/batch (max %d)@."
      domains clients per_client requests dt rps (Atomic.get errors) batches
      avg_batch after.Pet_net.Group_commit.max_batch;
    let json =
      Pet_pet.Json.Obj
        [
          ("domains", Pet_pet.Json.Int domains);
          ("clients", Pet_pet.Json.Int clients);
          ("requests", Pet_pet.Json.Int requests);
          ("errors", Pet_pet.Json.Int (Atomic.get errors));
          (* "elapsed", not "seconds": requests/requests_per_s already
             implies it, and a second directional key on the same
             quantity would double-gate the perf diff at an
             accidentally tighter effective threshold. *)
          ("elapsed", Pet_pet.Json.Float dt);
          ("requests_per_s", Pet_pet.Json.Float rps);
          ( "commit",
            Pet_pet.Json.Obj
              [
                ("batches", Pet_pet.Json.Int batches);
                ("events", Pet_pet.Json.Int events);
                ("max_batch", Pet_pet.Json.Int after.Pet_net.Group_commit.max_batch);
                ("avg_batch", Pet_pet.Json.Float avg_batch);
              ] );
        ]
    in
    (json, rps)

let tcp_scaling () =
  let clients = 8 and per_client = 450 in
  let configs = [ 1; 2; 4 ] in
  (* Best of three interleaved rounds: fsync wall latency on shared
     storage is noisy and dominates both sides of the ratio. Running
     1→2→4 per round (rather than three of each back to back) spreads
     any storage-speed drift across all configs, and the fastest round
     per config is its least noise-contaminated measurement. *)
  let rounds =
    List.init 3 (fun _ -> List.map (tcp_config ~clients ~per_client) configs)
  in
  let best i =
    List.map (fun round -> List.nth round i) rounds
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    |> List.hd
  in
  let results = List.mapi (fun i _ -> best i) configs in
  let rps_of n =
    List.nth results (Option.get (List.find_index (Int.equal n) configs))
    |> snd
  in
  let speedup = rps_of 4 /. rps_of 1 in
  Fmt.pr "tcp      4-domain speedup over 1 domain: %.2fx@." speedup;
  Pet_pet.Json.Obj
    [
      ("scenario", Pet_pet.Json.String "durable new_session churn, localhost TCP");
      ("configs", Pet_pet.Json.List (List.map fst results));
      ("tcp_speedup_4_domains", Pet_pet.Json.Float speedup);
    ]

(* Cache-hit traffic for the compiled fast path: many sessions
   repeatedly asking for reports over a small valuation pool, so almost
   every [get_report] can be answered from the per-valuation table of
   rendered responses (and every line takes the cursor decoder). The
   same workload runs compiled-on and compiled-off (plain BDD engine
   path) in an ABBA schedule so machine drift cancels out of the
   speedup. *)
let compiled_hit_case exposure =
  let escape s = Pet_pet.Json.to_string (Pet_pet.Json.String s) in
  let text = Pet_rules.Spec.to_string exposure in
  let digest = Pet_server.Registry.digest text in
  let population = Array.of_list (Exposure.eligible exposure) in
  let pool = Array.init 32 (fun i -> population.(i * Array.length population / 32)) in
  let sessions = 200 and reports = 16 in
  let requests = ref 0 and errors = ref 0 in
  let run ~compiled () =
    let tick = ref 0. in
    let service =
      Pet_server.Service.create ~compiled
        ~backend:(if compiled then Engine.Compiled else Engine.Bdd)
        ~capacity:4 ~ttl:0.
        ~now:(fun () -> tick := !tick +. 1.; !tick)
        ()
    in
    ignore
      (Pet_server.Service.handle_line service
         (Printf.sprintf
            {|{"pet":1,"id":0,"method":"publish_rules","params":{"rules":%s}}|}
            (escape text)));
    requests := 0;
    errors := 0;
    let send line =
      incr requests;
      let response = Pet_server.Service.handle_line service line in
      match Pet_pet.Json.parse response with
      | Ok obj when Pet_pet.Json.member "ok" obj <> None -> ()
      | _ -> incr errors
    in
    let _, dt =
      time_once (fun () ->
          for i = 0 to sessions - 1 do
            let session = Printf.sprintf "s%d" i in
            send
              (Printf.sprintf
                 {|{"pet":1,"id":1,"method":"new_session","params":{"digest":%s}}|}
                 (escape digest));
            for j = 0 to reports - 1 do
              let v = pool.(((i * reports) + j) mod Array.length pool) in
              send
                (Printf.sprintf
                   {|{"pet":1,"id":2,"method":"get_report","params":{"session":%s,"valuation":%s}}|}
                   (escape session)
                   (escape (Total.to_string v)))
            done;
            send
              (Printf.sprintf
                 {|{"pet":1,"id":3,"method":"choose_option","params":{"session":%s,"option":0}}|}
                 (escape session));
            send
              (Printf.sprintf
                 {|{"pet":1,"id":4,"method":"submit_form","params":{"session":%s}}|}
                 (escape session))
          done)
    in
    float_of_int !requests /. dt
  in
  ignore (run ~compiled:true ());
  (* warm-up: page in both code paths *)
  let t_on = ref 0. and t_off = ref 0. in
  let blocks = 2 in
  for _ = 1 to blocks do
    t_on := !t_on +. (1. /. run ~compiled:true ());
    t_off := !t_off +. (1. /. run ~compiled:false ());
    t_off := !t_off +. (1. /. run ~compiled:false ());
    t_on := !t_on +. (1. /. run ~compiled:true ())
  done;
  let rps_on = float_of_int (2 * blocks) /. !t_on in
  let rps_off = float_of_int (2 * blocks) /. !t_off in
  let speedup = rps_on /. rps_off in
  Fmt.pr
    "compiled H-cov cache-hit traffic: %.0f req/s engine path, %.0f req/s \
     compiled = %.1fx (acceptance >= 5x)@."
    rps_off rps_on speedup;
  Pet_pet.Json.Obj
    [
      ("case", Pet_pet.Json.String "H-cov");
      ( "scenario",
        Pet_pet.Json.String
          "cache-hit consent reports over a 32-valuation pool" );
      ("requests", Pet_pet.Json.Int !requests);
      ("errors", Pet_pet.Json.Int !errors);
      ("compiled_requests_per_s", Pet_pet.Json.Float rps_on);
      ("engine_requests_per_s", Pet_pet.Json.Float rps_off);
      ("speedup", Pet_pet.Json.Float speedup);
    ]

let server () =
  section "Server: pet serve request throughput (line-delimited JSON)";
  let run_case name exposure respondents =
    let json, _, _ = server_case name exposure respondents in
    json
  in
  let hcov_case = run_case "H-cov" (Lazy.force hcov) 1560 in
  let rsa_case = run_case "RSA" (Lazy.force rsa) 300 in
  let cases = [ hcov_case; rsa_case ] in
  let compiled = compiled_hit_case (Lazy.force hcov) in
  let tcp = tcp_scaling () in
  merge_json "BENCH_server.json"
    [
      ("cases", Pet_pet.Json.List cases);
      ("compiled", compiled);
      ("tcp", tcp);
    ]

(* --- Tenants: multi-tenant serving and hot rule migration ---------------------------

   The registry under fleet load: publish a corpus of tenants (every
   build drains through the single background builder domain), then
   serve Zipf-distributed respondent traffic across all of them, and
   hot-swap a busy tenant's rules mid-traffic. Corpus sizes stay at the
   small end of the band so a 1000-tenant publish finishes in CI time;
   the shape of the result — per-line p99 under tenant fan-out, swap
   settle latency — is what the section trends. *)

let tenants () =
  section "Tenants: multi-tenant registry, Zipf traffic, hot swaps";
  let module Corpus = Pet_corpus.Corpus in
  let escape s = Pet_pet.Json.to_string (Pet_pet.Json.String s) in
  let case count flows =
    let tick = ref 0. in
    let service =
      Pet_server.Service.create ~capacity:(2 * count) ~ttl:0.
        ~now:(fun () -> tick := !tick +. 1.; !tick)
        ()
    in
    let scenario = Corpus.scenario ~seed:42 ~lo:8 ~hi:12 ~count () in
    let errors = ref 0 and requests = ref 0 in
    let latencies = ref [] in
    let send line =
      incr requests;
      let t0 = Unix.gettimeofday () in
      let response = Pet_server.Service.handle_line service line in
      latencies := (Unix.gettimeofday () -. t0) :: !latencies;
      (match Pet_pet.Json.parse response with
      | Ok obj when Pet_pet.Json.member "ok" obj <> None -> ()
      | _ -> incr errors);
      response
    in
    let publish (f : Corpus.form) =
      ignore
        (send
           (Printf.sprintf
              {|{"pet":1,"method":"publish_rules","params":{"rules":%s,"tenant":%s}}|}
              (escape f.Corpus.text) (escape f.Corpus.name)))
    in
    let settle name =
      ignore
        (send
           (Printf.sprintf
              {|{"pet":1,"method":"tenant","params":{"name":%s,"wait":true}}|}
              (escape name)))
    in
    (* Publish everything, then drain the builder-domain backlog. *)
    let t0 = Unix.gettimeofday () in
    Array.iter publish scenario.Corpus.forms;
    Array.iter (fun (f : Corpus.form) -> settle f.Corpus.name) scenario.Corpus.forms;
    let publish_dt = Unix.gettimeofday () -. t0 in
    (* Zipf-distributed respondent flows across the fleet. *)
    latencies := [];
    requests := 0;
    let rng = Random.State.make [| 42; count |] in
    let t0 = Unix.gettimeofday () in
    for flow = 0 to flows - 1 do
      let f = scenario.Corpus.forms.(Corpus.pick rng scenario.Corpus.popularity) in
      let sid =
        let response =
          send
            (Printf.sprintf
               {|{"pet":1,"method":"new_session","params":{"tenant":%s}}|}
               (escape f.Corpus.name))
        in
        match Pet_pet.Json.parse response with
        | Ok obj ->
          Option.bind
            (Option.bind (Pet_pet.Json.member "ok" obj)
               (Pet_pet.Json.member "session"))
            Pet_pet.Json.string_opt
        | Error _ -> None
      in
      match sid with
      | None -> incr errors
      | Some sid ->
        let report =
          send
            (Printf.sprintf
               {|{"pet":1,"method":"get_report","params":{"session":%s,"valuation":%s}}|}
               (escape sid)
               (escape (Corpus.valuation ~seed:flow f 0)))
        in
        (* Ineligible respondents are a corpus fact of life, not a bench
           error: close those sessions without choosing. *)
        (match Pet_pet.Json.parse report with
        | Ok obj when Pet_pet.Json.member "ok" obj <> None ->
          ignore
            (send
               (Printf.sprintf
                  {|{"pet":1,"method":"choose_option","params":{"session":%s,"option":0}}|}
                  (escape sid)));
          ignore
            (send
               (Printf.sprintf
                  {|{"pet":1,"method":"submit_form","params":{"session":%s}}|}
                  (escape sid)))
        | _ -> decr errors)
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let rps = float_of_int !requests /. dt in
    let p99 =
      let sorted = List.sort compare !latencies in
      let a = Array.of_list sorted in
      if Array.length a = 0 then 0.
      else a.(min (Array.length a - 1) (99 * Array.length a / 100)) *. 1000.
    in
    (* Hot rule migration on the busiest tenant, mid-fleet: wall time
       from update_rules to the new version serving (build drained). *)
    let swap_ms = ref [] in
    let hot = ref scenario.Corpus.forms.(0) in
    for _ = 1 to 5 do
      hot := Corpus.update !hot;
      let t0 = Unix.gettimeofday () in
      ignore
        (send
           (Printf.sprintf
              {|{"pet":1,"method":"update_rules","params":{"tenant":%s,"rules":%s}}|}
              (escape (!hot).Corpus.name)
              (escape (!hot).Corpus.text)));
      settle (!hot).Corpus.name;
      swap_ms := ((Unix.gettimeofday () -. t0) *. 1000.) :: !swap_ms
    done;
    let swap_mean =
      List.fold_left ( +. ) 0. !swap_ms /. float_of_int (List.length !swap_ms)
    in
    let swap_max = List.fold_left max 0. !swap_ms in
    Pet_server.Service.shutdown service;
    Fmt.pr
      "%4d tenants: published+built in %.2fs; %d flow requests = %.0f req/s, \
       p99 %.2fms; hot swap %.1fms mean / %.1fms max; %d errors@."
      count publish_dt !requests rps p99 swap_mean swap_max !errors;
    Pet_pet.Json.Obj
      [
        ("tenants", Pet_pet.Json.Int count);
        ("publish_build_s", Pet_pet.Json.Float publish_dt);
        ( "builds_per_s",
          Pet_pet.Json.Float (float_of_int count /. publish_dt) );
        ("requests", Pet_pet.Json.Int !requests);
        ("errors", Pet_pet.Json.Int !errors);
        ("requests_per_s", Pet_pet.Json.Float rps);
        ("p99_ms", Pet_pet.Json.Float p99);
        ("hot_swap_mean_ms", Pet_pet.Json.Float swap_mean);
        ("hot_swap_max_ms", Pet_pet.Json.Float swap_max);
      ]
  in
  let small = case 100 2_000 in
  let large = case 1_000 2_000 in
  merge_json "BENCH_server.json"
    [ ("tenants", Pet_pet.Json.Obj [ ("at_100", small); ("at_1000", large) ]) ]

(* --- Obs: instrumentation overhead ---------------------------------------------------------------- *)

(* The price of the observability layer, measured on the server workload
   it instruments most densely: the H-cov request loop with metrics off
   (the library default) vs fully on. Also dumps the enabled run's
   snapshot, so CI trends the same counters the [metrics] endpoint
   serves. Uses an ABBA run schedule so machine drift cancels out of a
   ratio whose acceptance bound is 6% (it was 3% before the compiled
   fast path: the absolute instrumentation cost per request is
   unchanged, but compiled serving roughly halved the per-request time
   it is measured against). *)
let obs () =
  section "Obs: instrumentation overhead and metrics snapshot";
  let module Obs = Pet_obs.Metrics in
  Obs.set_clock Unix.gettimeofday;
  let workload name = server_case name (Lazy.force hcov) 1560 in
  (* Run-to-run throughput on this workload drifts by ±10% (heap
     growth, frequency scaling), dwarfing the effect we measure, so the
     schedule must cancel drift rather than hope it averages out: ABBA
     blocks (on,off,off,on) cancel any linear drift exactly, and the
     ratio compares total time over all runs, not best-of. Each block
     ends on an enabled run, so the registry still holds that run's
     samples when we snapshot it below. *)
  let blocks = 3 in
  let t_off = ref 0. and t_on = ref 0. in
  let service = ref None in
  let run enabled tag =
    if enabled then Obs.enable () else Obs.disable ();
    Obs.reset ();
    Pet_obs.Span.reset ();
    let _, rps, s = workload tag in
    (* Every run issues the same request count, so summing 1/rps sums
       per-request time. *)
    if enabled then begin
      t_on := !t_on +. (1. /. rps);
      service := Some s
    end
    else t_off := !t_off +. (1. /. rps)
  in
  for _ = 1 to blocks do
    run true "H-cov (obs on)";
    run false "H-cov (obs off)";
    run false "H-cov (obs off)";
    run true "H-cov (obs on)"
  done;
  let rps_off = float_of_int (2 * blocks) /. !t_off in
  let rps_on = float_of_int (2 * blocks) /. !t_on in
  let service = Option.get !service in
  (* [now = 0.]: the bench service's logical clock is private to the
     workload, and at 0 the SLO window covers every retained slice, so
     the payload dumps whatever the tracker currently holds. *)
  let payload =
    Pet_server.Service.metrics_payload service ~now:0. Pet_server.Proto.Mjson
  in
  let overhead = 1. -. (rps_on /. rps_off) in
  Fmt.pr
    "obs overhead on H-cov: %.0f req/s off, %.0f req/s on = %.2f%% \
     (acceptance < 6%%)@."
    rps_off rps_on (100. *. overhead);
  (* Flight recorder on top: same ABBA cancellation against a fresh
     baseline, with a real-time ticker thread journaling delta
     snapshots into a throwaway segment family every 50 ms — the
     deployment shape of [pet serve --flight], minus the WAL (whose
     cost the store bench owns). The gate is the same 6%: the recorder
     must be cheap enough to leave on. *)
  let flight_dir = tcp_temp_dir () in
  Unix.mkdir flight_dir 0o755;
  let fl =
    match Pet_store.Flight_log.open_dir flight_dir with
    | Ok fl -> fl
    | Error m -> failwith ("flight bench: " ^ m)
  in
  let fenc = Pet_obs.Flight.create () in
  let stop = Atomic.make false in
  let ticker =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          Thread.delay 0.05;
          if Obs.enabled () then
            try
              Pet_store.Flight_log.append fl
                (Pet_obs.Flight.snap fenc ~now:(Obs.now ()) (Obs.snapshot ()))
            with Sys_error _ -> ()
        done)
      ()
  in
  let t_off2 = ref 0. and t_flight = ref 0. in
  let run_flight enabled tag =
    if enabled then Obs.enable () else Obs.disable ();
    Obs.reset ();
    Pet_obs.Span.reset ();
    let _, rps, _ = workload tag in
    if enabled then t_flight := !t_flight +. (1. /. rps)
    else t_off2 := !t_off2 +. (1. /. rps)
  in
  let flight_blocks = 2 in
  for _ = 1 to flight_blocks do
    run_flight true "H-cov (obs+flight on)";
    run_flight false "H-cov (obs off)";
    run_flight false "H-cov (obs off)";
    run_flight true "H-cov (obs+flight on)"
  done;
  Atomic.set stop true;
  Thread.join ticker;
  let flight_records, flight_bytes = Pet_store.Flight_log.stats fl in
  Pet_store.Flight_log.close fl;
  ignore
    (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote flight_dir)));
  Obs.disable ();
  let rps_off2 = float_of_int (2 * flight_blocks) /. !t_off2 in
  let rps_flight = float_of_int (2 * flight_blocks) /. !t_flight in
  let flight_overhead = 1. -. (rps_flight /. rps_off2) in
  Fmt.pr
    "obs+flight overhead on H-cov: %.0f req/s off, %.0f req/s on = %.2f%% \
     (%d records, %d bytes journaled; acceptance < 6%%)@."
    rps_off2 rps_flight
    (100. *. flight_overhead)
    flight_records flight_bytes;
  write_json "BENCH_obs.json"
    (Pet_pet.Json.Obj
       [
         ("case", Pet_pet.Json.String "H-cov");
         ("requests_per_s_disabled", Pet_pet.Json.Float rps_off);
         ("requests_per_s_enabled", Pet_pet.Json.Float rps_on);
         ("overhead", Pet_pet.Json.Float overhead);
         ( "flight",
           Pet_pet.Json.Obj
             [
               ("requests_per_s_flight", Pet_pet.Json.Float rps_flight);
               ("flight_overhead", Pet_pet.Json.Float flight_overhead);
               ("records", Pet_pet.Json.Int flight_records);
               ("bytes", Pet_pet.Json.Int flight_bytes);
             ] );
         ("metrics", payload);
       ])

(* --- Store: append and recovery throughput ------------------------------------------------------- *)

(* The durability tax and the restart cost: events/second through the
   write-ahead log (with and without fsync) and the wall-clock to
   recover a 100k-event log — the figure that bounds restart time. *)
let store () =
  section "Store: write-ahead-log append and recovery";
  let module Persist = Pet_server.Persist in
  let module Store = Pet_store.Store in
  let rec remove_tree path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter
          (fun entry -> remove_tree (Filename.concat path entry))
          (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let event i =
    (* A realistic mix: mostly session transitions, a grant every forth
       event, a fresh rule set every 10k. *)
    let id = Printf.sprintf "s%d" (i / 4) in
    match i mod 4 with
    | 0 ->
      Persist.Session_created
        { id; digest = "bench"; tenant = None; at = float_of_int i }
    | 1 ->
      Persist.Session_chosen
        { id; mas = "0_1_10_0__1_"; benefits = [ "b1"; "b2" ]; at = float_of_int i }
    | 2 ->
      Persist.Grant
        {
          digest = "bench";
          grant_id = i / 4;
          form = "0_1_10_0__1_";
          benefits = [ "b1" ];
          session = Some id;
          tenant = None;
          revoked = false;
        }
    | _ ->
      if i mod 10_000 = 3 then
        Persist.Rules
          { digest = Printf.sprintf "d%d" i; text = String.make 400 'r' }
      else Persist.Session_submitted { id; grant_id = i / 4; at = float_of_int i }
  in
  let appends ~fsync ~count =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pet_bench_store_%d_%b" (Unix.getpid ()) fsync)
    in
    remove_tree dir;
    match Store.open_dir ~fsync ~auto_compact_segments:0 dir with
    | Error m -> failwith m
    | Ok (st, _) ->
      let _, dt =
        time_once (fun () ->
            for i = 0 to count - 1 do
              Store.append st (event i)
            done)
      in
      Store.close st;
      (dir, dt)
  in
  (* fsync-per-append is the durable configuration; a small run keeps
     the benchmark tolerable on slow disks. *)
  let fsync_count = 2_000 in
  let fsync_dir, fsync_dt = appends ~fsync:true ~count:fsync_count in
  remove_tree fsync_dir;
  Fmt.pr "append (fsync each): %d events in %.3fs = %.0f appends/s@."
    fsync_count fsync_dt
    (float_of_int fsync_count /. fsync_dt);
  let count = 100_000 in
  let dir, dt = appends ~fsync:false ~count in
  Fmt.pr "append (buffered):   %d events in %.3fs = %.0f appends/s@." count dt
    (float_of_int count /. dt);
  let log_bytes =
    Array.fold_left
      (fun acc f ->
        acc + (Unix.stat (Filename.concat dir f)).Unix.st_size)
      0 (Sys.readdir dir)
  in
  let recovery, recovery_dt =
    time_once (fun () ->
        match Store.read dir with Ok r -> r | Error m -> failwith m)
  in
  Fmt.pr
    "recovery:            %d events (%d segments, %.1f MiB) in %.3fs = %.1f \
     ms per 10k events@."
    (List.length recovery.Store.events)
    recovery.Store.files
    (float_of_int log_bytes /. 1048576.)
    recovery_dt
    (recovery_dt *. 1000. /. (float_of_int count /. 10_000.));
  remove_tree dir;
  (* BENCH_store.json is co-owned with the [audit] section. *)
  merge_json "BENCH_store.json"
       [
         ("fsync_appends", Pet_pet.Json.Int fsync_count);
         ( "fsync_appends_per_s",
           Pet_pet.Json.Float (float_of_int fsync_count /. fsync_dt) );
         ("appends", Pet_pet.Json.Int count);
         ("appends_per_s", Pet_pet.Json.Float (float_of_int count /. dt));
         ("log_bytes", Pet_pet.Json.Int log_bytes);
         ("recovered_events", Pet_pet.Json.Int (List.length recovery.Store.events));
         ("recovery_ms", Pet_pet.Json.Float (recovery_dt *. 1000.));
       ]

(* --- Audit: offline compliance-replay throughput ------------------------------------------- *)

(* How fast `pet audit` proves a log compliant: drive a real durable
   service through full lifecycles (including revocations and expiry
   horizons), then replay the directory through the offline auditor —
   every record re-framed, re-checksummed, and every grant re-proved
   minimal and accurate against the log's own rule text. *)
let audit_bench () =
  section "Audit: offline WAL compliance replay";
  let rec remove_tree path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter
          (fun entry -> remove_tree (Filename.concat path entry))
          (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pet_bench_audit_%d" (Unix.getpid ()))
  in
  remove_tree dir;
  let config =
    {
      Pet_rules.Generate.predicates = 10;
      benefits = 2;
      conjunctions = 2;
      width = 2;
      implications = 1;
    }
  in
  let exposure = Pet_rules.Generate.exposure ~config ~seed:7 () in
  let text = Pet_rules.Spec.to_string exposure in
  (match Pet_store.Store.open_dir ~fsync:false dir with
  | Error m -> failwith m
  | Ok (store, _) ->
    let tick = ref 0. in
    let service =
      Pet_server.Service.create ~durable:true
        ~resolve:(fun _ -> None)
        ~now:(fun () -> tick := !tick +. 1.; !tick)
        ()
    in
    Pet_server.Service.set_sink service (Pet_store.Store.sink store);
    let next_id = ref 0 in
    let feed method_ params =
      incr next_id;
      ignore
        (Pet_server.Service.handle_line service
           (Pet_pet.Json.to_string
              (Pet_pet.Json.Obj
                 [
                   ("pet", Pet_pet.Json.Int 1);
                   ("id", Pet_pet.Json.Int !next_id);
                   ("method", Pet_pet.Json.String method_);
                   ("params", Pet_pet.Json.Obj params);
                 ])))
    in
    feed "publish_rules" [ ("rules", Pet_pet.Json.String text) ];
    let rng = Random.State.make [| 0xbe7c |] in
    let sessions = 2_000 in
    for i = 0 to sessions - 1 do
      let sid = Printf.sprintf "s%d" i in
      feed "new_session" [ ("rules", Pet_pet.Json.String text) ];
      let v =
        String.init config.Pet_rules.Generate.predicates (fun _ ->
            if Random.State.bool rng then '1' else '0')
      in
      feed "get_report"
        [
          ("session", Pet_pet.Json.String sid);
          ("valuation", Pet_pet.Json.String v);
        ];
      feed "choose_option"
        [ ("session", Pet_pet.Json.String sid); ("option", Pet_pet.Json.Int 0) ];
      feed "submit_form" [ ("session", Pet_pet.Json.String sid) ];
      (match i mod 10 with
      | 0 -> feed "revoke" [ ("session", Pet_pet.Json.String sid) ]
      | 1 ->
        feed "expire"
          [
            ("session", Pet_pet.Json.String sid);
            ("after", Pet_pet.Json.Float 50.);
          ]
      | _ -> ())
    done;
    Pet_store.Store.close store);
  let report, dt =
    time_once (fun () ->
        match Pet_audit.Audit.run dir with
        | Ok report -> report
        | Error m -> failwith m)
  in
  remove_tree dir;
  let records = report.Pet_audit.Audit.records in
  if not (Pet_audit.Audit.pass report) then failwith "audit bench log failed";
  Fmt.pr
    "audit: %d records (%d files) in %.3fs = %.0f records/s, all six \
     properties PASS@."
    records report.Pet_audit.Audit.files dt
    (float_of_int records /. dt);
  merge_json "BENCH_store.json"
    [
      ("audit_records", Pet_pet.Json.Int records);
      ("audit_records_per_s", Pet_pet.Json.Float (float_of_int records /. dt));
      ("audit_ms", Pet_pet.Json.Float (dt *. 1000.));
    ]

(* --- Check: correctness-harness throughput --------------------------------------------------- *)

(* How much cross-validation a CI minute buys: differential + metamorphic
   + oracle checks per second on generated problems, and mutated protocol
   requests per second against an in-process service. *)
let check () =
  section "Check: correctness harness & fuzz throughput";
  let seeds = List.init 25 (fun i -> i + 1) in
  let results, dt =
    time_once (fun () -> Pet_check.Harness.run seeds)
  in
  let checks =
    List.fold_left
      (fun acc (_, (r : Pet_check.Finding.report)) -> acc + r.Pet_check.Finding.checks)
      0 results
  in
  let failed =
    List.filter (fun (_, r) -> not (Pet_check.Finding.ok r)) results
  in
  Fmt.pr
    "harness: %d seeds, %d checks in %.3fs = %.0f checks/s; %d seeds failing@."
    (List.length seeds) checks dt
    (float_of_int checks /. dt)
    (List.length failed);
  let stats, fuzz_dt =
    time_once (fun () -> Pet_check.Fuzz.run ~seed:0 ~count:20_000 ())
  in
  Fmt.pr
    "fuzz: %d requests in %.3fs = %.0f requests/s; %d ok, %d structured \
     errors, %d invalid, %d crashes@."
    stats.Pet_check.Fuzz.requests fuzz_dt
    (float_of_int stats.Pet_check.Fuzz.requests /. fuzz_dt)
    stats.Pet_check.Fuzz.ok stats.Pet_check.Fuzz.errors
    stats.Pet_check.Fuzz.invalid_responses
    (List.length stats.Pet_check.Fuzz.crashes)

(* --- Main ---------------------------------------------------------------------------------------- *)

let () =
  let sections =
    [
      ("tables", fun () -> table1 (); table2 (); table3 (); table4 ());
      ("figures", figures);
      ("solidarity", solidarity);
      ("ablations", fun () -> ablation_modes (); ablation_baseline ());
      ("timings", timings);
      ("sweep", sweep);
      ("symbolic", symbolic);
      ("server", server);
      ("tenants", tenants);
      ("obs", obs);
      ("store", store);
      ("audit", audit_bench);
      ("check", check);
    ]
  in
  (* "all" expands to every section wherever it appears, so one
     invocation runs every scenario and writes every BENCH_*.json. *)
  let requested =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.map fst sections
    | args ->
      List.concat_map
        (fun arg -> if arg = "all" then List.map fst sections else [ arg ])
        args
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Fmt.epr "unknown section %S; available: %s all@." name
          (String.concat " " (List.map fst sections));
        exit 2)
    requested
