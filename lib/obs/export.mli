(** Text exporters for {!Metrics.snapshot}.

    Neither function touches the global registry — pass them a snapshot
    — so exporting is side-effect free and easy to test. *)

val prometheus : Metrics.snapshot -> string
(** Prometheus text exposition (version 0.0.4 subset): one
    [# HELP name text] + [# TYPE name kind] comment pair per metric
    family (help from {!Metrics.help}, with a generic fallback so every
    family is annotated), counters as [_total] samples, gauges as plain
    samples, histograms expanded into cumulative [name_bucket{le="..."}]
    samples plus [name_sum] and [name_count]. Names with labels merge
    the [le] label into the existing label set; label values are escaped
    by {!Metrics.escape_label} at registration time. Sorted input yields
    byte-stable output. *)

val line : Metrics.snapshot -> string
(** A compact single-line [k=v] summary (counters and gauges verbatim,
    histograms as [name.count/.p50/.p99]), for
    [pet serve --metrics-interval] stderr heartbeats. Zero counters and
    never-observed histograms are omitted — the quiet parts of the
    system don't drown the active ones; gauges are always shown. No
    trailing newline. *)
