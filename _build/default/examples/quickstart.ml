(* Quickstart: the whole PET pipeline on the paper's running example, in
   a few dozen lines.

   Run with: dune exec examples/quickstart.exe *)

module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure

let () =
  (* 1. The service provider writes the decision rules once. This is the
     district-council scenario of the paper's Section 2.2: three
     questions, three benefits. *)
  let exposure =
    Pet_rules.Spec.parse_exn
      {|form p1 p2 p3          # p1: age <= 25, p2: unemployed, p3: suburbs
benefits b1 b2 b3      # transport card, tax reduction, parking card
rule b1 := p1 | (p2 & p3)
rule b2 := p1 & !p2
rule b3 := p1 & !p3
|}
  in

  (* 2. The provider builds its PET state: the proof engine, the MAS
     atlas and the equilibrium strategy (Algorithm 2). *)
  let provider = Pet_pet.Workflow.provider exposure in

  (* 3. An applicant fills the form completely, locally: 28 years old,
     unemployed, living in the suburbs = valuation 011. *)
  let applicant = Total.of_string (Exposure.xp exposure) "011" in

  (* 4. The PET computes the consent report: which minimal subsets of
     answers prove all their benefits, and what each reveals. *)
  (match Pet_pet.Workflow.report_for provider applicant with
  | Error m -> failwith m
  | Ok report ->
    Fmt.pr "--- consent report ---@.%a@.@." Pet_pet.Report.pp report;

    (* 5. The applicant sends the recommended minimized form only. *)
    let choice = Pet_pet.Report.recommended report in
    Fmt.pr "--- submitting %a ---@." Partial.pp choice.Pet_pet.Report.mas;
    (match Pet_pet.Workflow.submit provider choice.Pet_pet.Report.mas with
    | Error m -> failwith m
    | Ok grant ->
      Fmt.pr "granted: %a@."
        Fmt.(list ~sep:(any ", ") string)
        grant.Pet_pet.Workflow.benefits;

      (* 6. Years later, the archived minimized record still passes the
         audit: it proves exactly the benefits that were granted. *)
      Fmt.pr "audit: %b@." (Pet_pet.Workflow.audit provider grant)))
