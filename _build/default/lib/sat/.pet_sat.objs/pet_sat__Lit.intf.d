lib/sat/lit.mli: Fmt
