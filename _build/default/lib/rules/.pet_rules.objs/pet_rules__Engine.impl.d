lib/rules/engine.ml: Bool Exposure Fmt Hashtbl List Pet_bdd Pet_logic Pet_sat Pet_valuation
