(** The PST-2012 baseline minimizer ([3] in the paper): pick one satisfied
    conjunction per granted benefit and reveal exactly those predicates,
    greedily preferring conjunctions that add the fewest new predicates.

    Unlike Algorithm 1 it neither closes candidates under the deductions a
    reasoning attacker can make, nor checks that the disclosed form proves
    no extra benefit — so the number of blanks it reports ("claimed
    privacy") overestimates the real protection. The ablation benches
    quantify that gap. *)

type result = {
  disclosed : Pet_valuation.Partial.t;
  claimed_blanks : int;  (** raw blank count, the baseline's privacy claim *)
}

val minimize : Pet_rules.Engine.t -> Pet_valuation.Total.t -> result
(** @raise Invalid_argument when the valuation violates the constraints. *)

val rule_level_leak : Pet_rules.Engine.t -> Pet_valuation.Partial.t -> int
(** Number of blanks of a disclosed form whose value is already forced by
    the rule set alone — privacy the baseline claims but does not
    deliver even against an attacker who only reads the rules. *)
