module F = Pet_logic.Formula
module Dnf = Pet_logic.Dnf
module Universe = Pet_valuation.Universe

type conj = { mask : int; bits : int }

type t = {
  xp : Universe.t;
  n : int;
  full : int; (* (1 lsl n) - 1 *)
  names : string array; (* benefit names, benefit-universe order *)
  rules : conj array array; (* rules.(i) = compiled DNF of benefit i *)
  consistent_tab : Bytes.t; (* 2^n bytes, '\001' iff constraints hold *)
  benefit_tab : int array; (* 2^n benefit bitsets *)
}

let max_tabulated_predicates = 16

let compile_conjunction xp c =
  List.fold_left
    (fun acc (l : Pet_logic.Literal.t) ->
      let i = Universe.index xp l.var in
      {
        mask = acc.mask lor (1 lsl i);
        bits = (if l.sign then acc.bits lor (1 lsl i) else acc.bits);
      })
    { mask = 0; bits = 0 } c

(* A constraint formula becomes a closure over the valuation word:
   variable indices are resolved once, so evaluating it 2^n times does
   no name lookups. *)
let rec compile_formula xp = function
  | F.True -> fun _ -> true
  | F.False -> fun _ -> false
  | F.Var x ->
    let i = Universe.index xp x in
    fun v -> (v lsr i) land 1 = 1
  | F.Not f ->
    let g = compile_formula xp f in
    fun v -> not (g v)
  | F.And (a, b) ->
    let ga = compile_formula xp a and gb = compile_formula xp b in
    fun v -> ga v && gb v
  | F.Or (a, b) ->
    let ga = compile_formula xp a and gb = compile_formula xp b in
    fun v -> ga v || gb v
  | F.Implies (a, b) ->
    let ga = compile_formula xp a and gb = compile_formula xp b in
    fun v -> (not (ga v)) || gb v
  | F.Iff (a, b) ->
    let ga = compile_formula xp a and gb = compile_formula xp b in
    fun v -> Bool.equal (ga v) (gb v)

let conj_holds c v = v land c.mask = c.bits

let dnf_holds rules v =
  let k = Array.length rules in
  let rec go i = i < k && (conj_holds rules.(i) v || go (i + 1)) in
  go 0

let create ~xp ~benefits ~rule ~constraints =
  let n = Universe.size xp in
  if n > max_tabulated_predicates then
    invalid_arg
      (Printf.sprintf "Pet_compile.Code.create: %d predicates exceed the \
                       tabulation threshold (%d)"
         n max_tabulated_predicates);
  let names = Array.of_list benefits in
  let index name =
    match Universe.index_opt xp name with
    | Some i -> ignore i
    | None ->
      invalid_arg
        (Printf.sprintf
           "Pet_compile.Code.create: %S is not a form predicate" name)
  in
  List.iter
    (fun f -> List.iter index (F.vars f))
    (constraints
    @ Array.to_list (Array.map (fun b -> Dnf.to_formula (rule b)) names));
  let rules =
    Array.map
      (fun b -> Array.of_list (List.map (compile_conjunction xp) (rule b)))
      names
  in
  let checks = List.map (compile_formula xp) constraints in
  let size = 1 lsl n in
  let consistent_tab = Bytes.make size '\001' in
  let benefit_tab = Array.make size 0 in
  for v = 0 to size - 1 do
    if not (List.for_all (fun check -> check v) checks) then
      Bytes.unsafe_set consistent_tab v '\000';
    let granted = ref 0 in
    Array.iteri
      (fun i conjs -> if dnf_holds conjs v then granted := !granted lor (1 lsl i))
      rules;
    benefit_tab.(v) <- !granted
  done;
  { xp; n; full = size - 1; names; rules; consistent_tab; benefit_tab }

let universe t = t.xp
let predicates t = t.n
let benefit_count t = Array.length t.names
let benefit_name t i = t.names.(i)
let full_benefit_mask t = (1 lsl Array.length t.names) - 1
let conjunctions t i = t.rules.(i)
let consistent_bits t v = Bytes.unsafe_get t.consistent_tab v <> '\000'
let benefit_tab_get t v = Array.unsafe_get t.benefit_tab v
let benefit_bits t v = t.benefit_tab.(v)

type scan = { any : bool; and_bits : int; or_bits : int; benefit_and : int }

(* The completions of (dom, bits) are [bits lor s] for every submask
   [s] of the free positions; [(s - 1) land free] steps through them in
   decreasing order and the loop ends after s = 0. *)
let scan t ~dom ~bits =
  let free = t.full land lnot dom in
  let any = ref false in
  let and_bits = ref t.full
  and or_bits = ref 0
  and benefit_and = ref (full_benefit_mask t) in
  let s = ref free in
  let continue = ref true in
  while !continue do
    let v = bits lor !s in
    if consistent_bits t v then begin
      any := true;
      and_bits := !and_bits land v;
      or_bits := !or_bits lor v;
      benefit_and := !benefit_and land benefit_tab_get t v
    end;
    if !s = 0 then continue := false else s := (!s - 1) land free
  done;
  { any = !any; and_bits = !and_bits; or_bits = !or_bits;
    benefit_and = !benefit_and }

let fold_completions t ~dom ~bits ~stop_when =
  let free = t.full land lnot dom in
  let rec go s =
    let v = bits lor s in
    if consistent_bits t v && stop_when v then true
    else if s = 0 then false
    else go ((s - 1) land free)
  in
  go free

let consistent t ~dom ~bits = fold_completions t ~dom ~bits ~stop_when:(fun _ -> true)

let entails_benefit t ~dom ~bits i =
  let bit = 1 lsl i in
  not
    (fold_completions t ~dom ~bits ~stop_when:(fun v ->
         benefit_tab_get t v land bit = 0))

let entails_literal t ~dom ~bits i value =
  let bit = 1 lsl i in
  let wanted = if value then bit else 0 in
  not
    (fold_completions t ~dom ~bits ~stop_when:(fun v -> v land bit <> wanted))
