module Dnf = Pet_logic.Dnf
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Engine = Pet_rules.Engine
module Exposure = Pet_rules.Exposure
module Rule = Pet_rules.Rule

type result = { disclosed : Partial.t; claimed_blanks : int }

let minimize engine v =
  let exposure = Engine.exposure engine in
  if not (Exposure.satisfies_constraints exposure v) then
    invalid_arg "Baseline.minimize: valuation violates the constraints";
  let xp = Exposure.xp exposure in
  let rho = Total.rho v in
  let restriction c =
    Partial.of_assoc xp
      (List.map (fun (l : Pet_logic.Literal.t) -> (l.var, l.sign)) c)
  in
  (* For each granted benefit, greedily pick the satisfied conjunction
     adding the fewest predicates to what is already disclosed. *)
  let disclose acc b =
    let satisfied =
      Rule.conjunctions (Exposure.rule_for exposure b)
      |> List.filter (Dnf.conjunction_holds rho)
      |> List.map restriction
    in
    let cost w =
      List.length
        (List.filter (fun p -> not (Partial.defines acc p)) (Partial.domain w))
    in
    let best =
      List.fold_left
        (fun best w ->
          match best with
          | None -> Some w
          | Some b' -> if cost w < cost b' then Some w else best)
        None satisfied
    in
    match best with
    | None -> acc (* unreachable for granted benefits *)
    | Some w -> (
      match Partial.merge acc w with
      | Some m -> m
      | None -> assert false (* both below v *))
  in
  let granted = Engine.benefits_of_total engine v in
  let disclosed =
    List.fold_left disclose (Partial.empty xp) granted
  in
  { disclosed; claimed_blanks = Partial.blank_count disclosed }

let rule_level_leak engine w = List.length (Engine.deduced_literals engine w)
