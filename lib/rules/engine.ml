module F = Pet_logic.Formula
module Cnf = Pet_logic.Cnf
module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Solver = Pet_sat.Solver
module Lit = Pet_sat.Lit
module Bdd = Pet_bdd.Bdd
module Code = Pet_compile.Code

type backend = Brute | Sat | Bdd | Compiled

type impl =
  | Ibrute
  | Isat of { solver : Solver.t; var_of : string -> int }
  | Ibdd of { man : Bdd.man; r : Bdd.node }
  | Icode of Code.t

type t = { e : Exposure.t; kind : backend; impl : impl }

(* Variable numbering shared by the SAT and BDD backends: form predicates
   first (their universe order), then benefits. *)
let base_index e name =
  let xp = Exposure.xp e and xb = Exposure.xb e in
  match Universe.index_opt xp name with
  | Some i -> Some i
  | None -> (
    match Universe.index_opt xb name with
    | Some i -> Some (Universe.size xp + i)
    | None -> None)

let fresh_prefix = "@tseitin"

let make_sat e =
  let solver = Solver.create () in
  let np = Universe.size (Exposure.xp e) in
  let nb = Universe.size (Exposure.xb e) in
  Solver.ensure_nvars solver (np + nb);
  let aux = Hashtbl.create 64 in
  let var_of name =
    match base_index e name with
    | Some i -> i
    | None -> (
      match Hashtbl.find_opt aux name with
      | Some i -> i
      | None ->
        let i = Solver.new_var solver in
        Hashtbl.add aux name i;
        i)
  in
  let clauses = Cnf.tseitin ~fresh_prefix (Exposure.to_formula e) in
  List.iter
    (fun clause ->
      Solver.add_clause solver
        (List.map
           (fun (l : Pet_logic.Literal.t) -> Lit.make (var_of l.var) l.sign)
           clause))
    clauses;
  Isat { solver; var_of }

let make_bdd e =
  let man = Bdd.man () in
  let index name =
    match base_index e name with
    | Some i -> i
    | None -> assert false (* formulas only mention Xp u Xb *)
  in
  let rec compile = function
    | F.True -> Bdd.one
    | F.False -> Bdd.zero
    | F.Var x -> Bdd.var man (index x)
    | F.Not f -> Bdd.neg man (compile f)
    | F.And (a, b) -> Bdd.conj man (compile a) (compile b)
    | F.Or (a, b) -> Bdd.disj man (compile a) (compile b)
    | F.Implies (a, b) -> Bdd.imp man (compile a) (compile b)
    | F.Iff (a, b) -> Bdd.iff man (compile a) (compile b)
  in
  Ibdd { man; r = compile (Exposure.to_formula e) }

let make_code e =
  Icode
    (Code.create ~xp:(Exposure.xp e)
       ~benefits:(Universe.names (Exposure.xb e))
       ~rule:(fun b -> (Exposure.rule_for e b).Rule.dnf)
       ~constraints:(Exposure.constraints e))

let backend_name = function
  | Brute -> "brute"
  | Sat -> "sat"
  | Bdd -> "bdd"
  | Compiled -> "compiled"

let obs_queries kind =
  Pet_obs.Metrics.counter
    ~labels:[ ("backend", backend_name kind) ]
    "pet_engine_queries_total"

let obs_queries_brute = obs_queries Brute
let obs_queries_sat = obs_queries Sat
let obs_queries_bdd = obs_queries Bdd
let obs_queries_compiled = obs_queries Compiled
let obs_bdd_nodes = Pet_obs.Metrics.gauge "pet_bdd_nodes"
let obs_bdd_ite = Pet_obs.Metrics.gauge "pet_bdd_ite_calls"
let obs_bdd_hits = Pet_obs.Metrics.gauge "pet_bdd_ite_cache_hits"

let create ?(backend = Sat) e =
  let impl =
    Pet_obs.Span.enter
      ("engine.compile." ^ backend_name backend)
      (fun () ->
        match backend with
        | Brute -> Ibrute
        | Sat -> make_sat e
        | Bdd -> make_bdd e
        | Compiled ->
          (* Above the tabulation threshold the compiled backend keeps
             its name but answers through a BDD: callers choose
             [Compiled] for speed, not for a representation, and the
             differential harness must be able to drive it at every
             form size. *)
          if
            Universe.size (Exposure.xp e) <= Code.max_tabulated_predicates
          then make_code e
          else make_bdd e)
  in
  { e; kind = backend; impl }

let backend t = t.kind
let exposure t = t.e

(* --- Brute-force backend ------------------------------------------------ *)

(* Consistent completions of [w] over the form universe. *)
let brute_completions e w =
  List.filter (Exposure.satisfies_constraints e) (Partial.extensions w)

let brute_consistent e w = brute_completions e w <> []

let brute_entails_benefit e w b =
  List.for_all
    (fun v -> List.mem b (Exposure.benefits_of_assignment e (Total.rho v)))
    (brute_completions e w)

let brute_entails_literal e w p value =
  List.for_all
    (fun v -> Bool.equal (Total.value v p) value)
    (brute_completions e w)

(* --- SAT backend ---------------------------------------------------------- *)

let sat_assumptions var_of w =
  List.map (fun (name, b) -> Lit.make (var_of name) b) (Partial.bindings w)

let sat_consistent solver var_of w =
  Solver.solve ~assumptions:(sat_assumptions var_of w) solver = Solver.Sat

let sat_refutes solver var_of w extra =
  (* Is [R /\ w /\ extra] unsatisfiable? *)
  Solver.solve ~assumptions:(extra :: sat_assumptions var_of w) solver
  = Solver.Unsat

(* --- BDD backend ------------------------------------------------------------ *)

let bdd_restrict_by man r e w =
  let xp = Exposure.xp e in
  List.fold_left
    (fun acc (name, b) -> Bdd.restrict man acc (Universe.index xp name) b)
    r (Partial.bindings w)

let bdd_consistent man r e w = not (Bdd.is_unsat (bdd_restrict_by man r e w))

let bdd_refutes man r e w var value =
  (* Is [R /\ w /\ (var = value)] unsatisfiable? *)
  let restricted = bdd_restrict_by man r e w in
  Bdd.is_unsat (Bdd.restrict man restricted var value)

(* --- Dispatch ------------------------------------------------------------------ *)

let check_universe t w =
  if not (Universe.equal (Partial.universe w) (Exposure.xp t.e)) then
    invalid_arg "Engine: valuation universe differs from the form universe"

let count_query t =
  if Pet_obs.Metrics.enabled () then
    Pet_obs.Metrics.incr
      (match t.kind with
      | Brute -> obs_queries_brute
      | Sat -> obs_queries_sat
      | Bdd -> obs_queries_bdd
      | Compiled -> obs_queries_compiled)

let sync_obs t =
  match t.impl with
  | Ibdd { man; _ } ->
    let s = Bdd.stats man in
    Pet_obs.Metrics.set_gauge obs_bdd_nodes (float_of_int s.Bdd.nodes);
    Pet_obs.Metrics.set_gauge obs_bdd_ite (float_of_int s.Bdd.ite_calls);
    Pet_obs.Metrics.set_gauge obs_bdd_hits (float_of_int s.Bdd.ite_cache_hits)
  | Ibrute | Isat _ | Icode _ -> ()

let consistent t w =
  check_universe t w;
  count_query t;
  match t.impl with
  | Ibrute -> brute_consistent t.e w
  | Isat { solver; var_of } -> sat_consistent solver var_of w
  | Ibdd { man; r } -> bdd_consistent man r t.e w
  | Icode c ->
    Code.consistent c ~dom:(Partial.domain_mask w) ~bits:(Partial.bits w)

let benefit_index t b =
  Universe.size (Exposure.xp t.e) + Universe.index (Exposure.xb t.e) b

let entails_benefit t w b =
  check_universe t w;
  count_query t;
  match t.impl with
  | Ibrute ->
    ignore (Universe.index (Exposure.xb t.e) b);
    brute_entails_benefit t.e w b
  | Isat { solver; var_of } ->
    sat_refutes solver var_of w (Lit.make (benefit_index t b) false)
  | Ibdd { man; r } -> bdd_refutes man r t.e w (benefit_index t b) false
  | Icode c ->
    Code.entails_benefit c ~dom:(Partial.domain_mask w) ~bits:(Partial.bits w)
      (Universe.index (Exposure.xb t.e) b)

let benefits t w =
  List.filter (entails_benefit t w) (Universe.names (Exposure.xb t.e))

let benefits_of_total t v =
  Exposure.benefits_of_assignment t.e (Total.rho v)

let entails_literal t w p value =
  check_universe t w;
  count_query t;
  let i = Universe.index (Exposure.xp t.e) p in
  match t.impl with
  | Ibrute -> brute_entails_literal t.e w p value
  | Isat { solver; var_of } ->
    ignore i;
    sat_refutes solver var_of w (Lit.make (var_of p) (not value))
  | Ibdd { man; r } -> bdd_refutes man r t.e w i (not value)
  | Icode c ->
    Code.entails_literal c ~dom:(Partial.domain_mask w) ~bits:(Partial.bits w)
      i value

let deduced_literals t w =
  check_universe t w;
  List.filter_map
    (fun p ->
      if Partial.defines w p then None
      else if entails_literal t w p true then Some (p, true)
      else if entails_literal t w p false then Some (p, false)
      else None)
    (Universe.names (Exposure.xp t.e))

let all_backends = [ Brute; Sat; Bdd; Compiled ]
let pp_backend ppf b = Fmt.string ppf (backend_name b)
