lib/game/equilibrium.ml: Fmt Payoff Pet_minimize Profile
