examples/hcov_alice_bob.mli:
