type t =
  | True
  | False
  | Var of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t

let rec equal a b =
  match a, b with
  | True, True | False, False -> true
  | Var x, Var y -> String.equal x y
  | Not a, Not b -> equal a b
  | And (a1, a2), And (b1, b2)
  | Or (a1, a2), Or (b1, b2)
  | Implies (a1, a2), Implies (b1, b2)
  | Iff (a1, a2), Iff (b1, b2) -> equal a1 b1 && equal a2 b2
  | (True | False | Var _ | Not _ | And _ | Or _ | Implies _ | Iff _), _ ->
    false

let compare = Stdlib.compare

let var x = Var x

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let and_ a b =
  match a, b with
  | True, f | f, True -> f
  | False, _ | _, False -> False
  | _ -> And (a, b)

let or_ a b =
  match a, b with
  | False, f | f, False -> f
  | True, _ | _, True -> True
  | _ -> Or (a, b)

let imp a b =
  match a, b with
  | False, _ -> True
  | True, f -> f
  | _, True -> True
  | f, False -> neg f
  | _ -> Implies (a, b)

let iff a b =
  match a, b with
  | True, f | f, True -> f
  | False, f | f, False -> neg f
  | _ -> Iff (a, b)

let conj fs = List.fold_left and_ True fs
let disj fs = List.fold_left or_ False fs

let rec eval rho = function
  | True -> true
  | False -> false
  | Var x -> rho x
  | Not f -> not (eval rho f)
  | And (a, b) -> eval rho a && eval rho b
  | Or (a, b) -> eval rho a || eval rho b
  | Implies (a, b) -> (not (eval rho a)) || eval rho b
  | Iff (a, b) -> Bool.equal (eval rho a) (eval rho b)

module Sset = Set.Make (String)

let vars f =
  let rec go acc = function
    | True | False -> acc
    | Var x -> Sset.add x acc
    | Not f -> go acc f
    | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> go (go acc a) b
  in
  Sset.elements (go Sset.empty f)

let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
    1 + size a + size b

let rec map_vars s = function
  | True -> True
  | False -> False
  | Var x -> s x
  | Not f -> neg (map_vars s f)
  | And (a, b) -> and_ (map_vars s a) (map_vars s b)
  | Or (a, b) -> or_ (map_vars s a) (map_vars s b)
  | Implies (a, b) -> imp (map_vars s a) (map_vars s b)
  | Iff (a, b) -> iff (map_vars s a) (map_vars s b)

let all_assignments names =
  let names = Array.of_list names in
  let n = Array.length names in
  if n > Sys.int_size - 2 then
    invalid_arg "Formula.all_assignments: too many variables";
  let assignment bits x =
    let rec find i =
      if i >= n then raise Not_found
      else if String.equal names.(i) x then (bits lsr i) land 1 = 1
      else find (i + 1)
    in
    find 0
  in
  List.init (1 lsl n) assignment

let tautology f = List.for_all (fun rho -> eval rho f) (all_assignments (vars f))

let satisfiable f = List.exists (fun rho -> eval rho f) (all_assignments (vars f))

let merge_vars f g =
  Sset.elements (Sset.union (Sset.of_list (vars f)) (Sset.of_list (vars g)))

let entails f g =
  List.for_all
    (fun rho -> (not (eval rho f)) || eval rho g)
    (all_assignments (merge_vars f g))

let equivalent f g =
  List.for_all
    (fun rho -> Bool.equal (eval rho f) (eval rho g))
    (all_assignments (merge_vars f g))

(* Printing with minimal parentheses. Precedences, tightest first:
   atoms/negation, conjunction, disjunction, implication (right
   associative), equivalence. *)
let pp ppf f =
  let rec go prec ppf f =
    let paren p body = if p < prec then Fmt.pf ppf "(%t)" body else body ppf in
    match f with
    | True -> Fmt.string ppf "true"
    | False -> Fmt.string ppf "false"
    | Var x -> Fmt.string ppf x
    | Not f -> paren 4 (fun ppf -> Fmt.pf ppf "!%a" (go 5) f)
    | And (a, b) -> paren 3 (fun ppf -> Fmt.pf ppf "%a & %a" (go 3) a (go 4) b)
    | Or (a, b) -> paren 2 (fun ppf -> Fmt.pf ppf "%a | %a" (go 2) a (go 3) b)
    | Implies (a, b) ->
      paren 1 (fun ppf -> Fmt.pf ppf "%a -> %a" (go 2) a (go 1) b)
    | Iff (a, b) ->
      paren 0 (fun ppf -> Fmt.pf ppf "%a <-> %a" (go 1) a (go 1) b)
  in
  go 0 ppf f

let to_string f = Fmt.str "%a" pp f

let ( && ) = and_
let ( || ) = or_
let ( => ) = imp
let ( <=> ) = iff
