module Atlas = Pet_minimize.Atlas

type t = {
  atlas : Atlas.t;
  moves : int array; (* player index -> mas index *)
  crowds : int list array; (* mas index -> player indices, ascending *)
}

let make atlas f =
  let n = Atlas.player_count atlas in
  let moves =
    Array.init n (fun i ->
        let m = f i in
        if not (List.mem m (Atlas.choices_of_player atlas i)) then
          invalid_arg
            (Printf.sprintf "Profile.make: MAS %d is not a choice of player %d"
               m i);
        m)
  in
  let crowds = Array.make (Atlas.mas_count atlas) [] in
  for i = n - 1 downto 0 do
    crowds.(moves.(i)) <- i :: crowds.(moves.(i))
  done;
  { atlas; moves; crowds }

let atlas t = t.atlas

let move_of t i =
  if i < 0 || i >= Array.length t.moves then
    invalid_arg "Profile.move_of: out of range";
  t.moves.(i)

let crowd t m =
  if m < 0 || m >= Array.length t.crowds then
    invalid_arg "Profile.crowd: out of range";
  t.crowds.(m)

let crowd_size t m = List.length (crowd t m)

let move_of_valuation t v =
  match Atlas.find_player t.atlas v with
  | Some i -> Atlas.mas t.atlas t.moves.(i)
  | None -> raise Not_found

let equal a b = a.atlas == b.atlas && a.moves = b.moves
