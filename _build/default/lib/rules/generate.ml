module F = Pet_logic.Formula
module Universe = Pet_valuation.Universe

type config = {
  predicates : int;
  benefits : int;
  conjunctions : int;
  width : int;
  implications : int;
}

let default =
  { predicates = 8; benefits = 2; conjunctions = 3; width = 3; implications = 2 }

let predicate i = Printf.sprintf "p%d" (i + 1)
let benefit i = Printf.sprintf "b%d" (i + 1)

let random_literal rng n =
  let v = F.var (predicate (Random.State.int rng n)) in
  if Random.State.bool rng then v else F.neg v

let random_conjunction rng n width =
  F.conj (List.init width (fun _ -> random_literal rng n))

let random_dnf rng n ~conjunctions ~width =
  F.disj (List.init conjunctions (fun _ -> random_conjunction rng n width))

(* premise literal -> consequence literal, over distinct variables so the
   implication is always satisfiable. *)
let random_implication rng n =
  let i = Random.State.int rng n in
  let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
  let lit k =
    let v = F.var (predicate k) in
    if Random.State.bool rng then v else F.neg v
  in
  F.Implies (lit i, lit j)

let exposure ?(config = default) ~seed () =
  if config.predicates < 2 then invalid_arg "Generate.exposure: predicates < 2";
  if config.benefits < 1 then invalid_arg "Generate.exposure: benefits < 1";
  let rng = Random.State.make [| seed; config.predicates; config.benefits |] in
  let xp = Universe.of_names (List.init config.predicates predicate) in
  let xb = Universe.of_names (List.init config.benefits benefit) in
  let rules =
    List.init config.benefits (fun i ->
        Rule.of_formula ~benefit:(benefit i)
          (random_dnf rng config.predicates ~conjunctions:config.conjunctions
             ~width:config.width))
  in
  let constraints =
    List.init config.implications (fun _ ->
        random_implication rng config.predicates)
  in
  Exposure.create ~xp ~xb ~rules ~constraints ()
