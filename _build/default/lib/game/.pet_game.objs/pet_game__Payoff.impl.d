lib/game/payoff.ml: Fmt List Pet_minimize Pet_valuation Profile
