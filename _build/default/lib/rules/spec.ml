module F = Pet_logic.Formula
module Parse = Pet_logic.Parse
module Universe = Pet_valuation.Universe

type draft = {
  mutable form : string list option;
  mutable benefits : string list option;
  mutable rules : (string * F.t) list; (* reversed *)
  mutable constraints : F.t list; (* reversed *)
}

exception Fail of string

let fail lineno fmt =
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "line %d: %s" lineno m))) fmt

let words line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (( <> ) "")

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_formula lineno text =
  match Parse.formula_result text with
  | Ok f -> f
  | Error m -> fail lineno "%s" m

(* Split "name := formula" after a keyword. *)
let parse_rule_line lineno rest =
  match String.index_opt rest ':' with
  | Some i
    when i + 1 < String.length rest
         && rest.[i + 1] = '='
         && String.trim (String.sub rest 0 i) <> "" ->
    let name = String.trim (String.sub rest 0 i) in
    let body = String.sub rest (i + 2) (String.length rest - i - 2) in
    if String.trim body = "" then fail lineno "empty rule body";
    (name, parse_formula lineno body)
  | _ -> fail lineno "expected 'rule <benefit> := <formula>'"

let parse input =
  let draft = { form = None; benefits = None; rules = []; constraints = [] } in
  try
    List.iteri
      (fun i line ->
        let lineno = i + 1 in
        let line = String.trim (strip_comment line) in
        if line <> "" then
          match words line with
          | "form" :: names ->
            if draft.form <> None then fail lineno "duplicate 'form'";
            if names = [] then fail lineno "'form' needs at least one name";
            draft.form <- Some names
          | "benefits" :: names ->
            if draft.benefits <> None then fail lineno "duplicate 'benefits'";
            if names = [] then fail lineno "'benefits' needs at least one name";
            draft.benefits <- Some names
          | "rule" :: _ ->
            let rest =
              String.trim (String.sub line 4 (String.length line - 4))
            in
            draft.rules <- parse_rule_line lineno rest :: draft.rules
          | "constraint" :: _ ->
            let rest =
              String.trim (String.sub line 10 (String.length line - 10))
            in
            if rest = "" then fail lineno "empty constraint";
            draft.constraints <- parse_formula lineno rest :: draft.constraints
          | keyword :: _ -> fail lineno "unknown declaration %S" keyword
          | [] -> ())
      (String.split_on_char '\n' input);
    let form =
      match draft.form with
      | Some f -> f
      | None -> raise (Fail "missing 'form' declaration")
    in
    let benefits =
      match draft.benefits with
      | Some b -> b
      | None -> raise (Fail "missing 'benefits' declaration")
    in
    let xp =
      try Universe.of_names form
      with Invalid_argument m -> raise (Fail m)
    in
    let xb =
      try Universe.of_names benefits
      with Invalid_argument m -> raise (Fail m)
    in
    let rules =
      List.rev_map
        (fun (benefit, f) -> Rule.of_formula ~benefit f)
        draft.rules
    in
    match
      Exposure.create ~xp ~xb ~rules
        ~constraints:(List.rev draft.constraints) ()
    with
    | e -> Ok e
    | exception Invalid_argument m -> Error m
  with Fail m -> Error m

let parse_exn input =
  match parse input with Ok e -> e | Error m -> invalid_arg m

let print ppf e =
  Fmt.pf ppf "form %s@."
    (String.concat " " (Universe.names (Exposure.xp e)));
  Fmt.pf ppf "benefits %s@."
    (String.concat " " (Universe.names (Exposure.xb e)));
  List.iter
    (fun (r : Rule.t) ->
      Fmt.pf ppf "rule %s := %a@." r.benefit Pet_logic.Dnf.pp r.dnf)
    (Exposure.rules e);
  List.iter
    (fun c -> Fmt.pf ppf "constraint %a@." F.pp c)
    (Exposure.constraints e)

let to_string e = Fmt.str "%a" print e
