(* Consent-lifecycle state: one entry per session that has (or had)
   something at stake — an archived grant, a revocation, an expiry
   horizon. Entries hold identifiers only (session id, ledger key,
   grant id), never a form, so keeping them for the lifetime of the
   archive costs nothing privacy-wise and lets a respondent revoke long
   after the session itself was swept.

   Like the grant ledgers, one store is shared across every shard of a
   sharded deployment (a revocation must reach the grant wherever it
   was recorded); the mutex guards the table and the sweep cursor. The
   per-entry mutable fields are only written by the session's owning
   shard (requests route by session id) and by the sweep, whose ledger
   tombstoning is idempotent — a benign race. *)

type entry = {
  session : string;
  mutable key : string;  (* the ledger the grant lives in; "" until known *)
  mutable tenant : string option;
  mutable grant_id : int option;
  mutable revoked_at : float option;
  mutable horizon : (float * float) option;  (* (expires_at, set_at) *)
  mutable expired : bool;  (* the horizon was applied: grant tombstoned *)
}

type counters = { tracked : int; revoked : int; expired : int; pending : int }

type t = {
  m : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable cursor : string list;
      (* session ids still to visit in the current incremental
         horizon-sweep round; refilled from the armed entries when
         exhausted — the consent twin of [Session.sweep_step] *)
  mutable revoked : int;
  mutable expired : int;
}

let create () =
  {
    m = Mutex.create ();
    entries = Hashtbl.create 16;
    cursor = [];
    revoked = 0;
    expired = 0;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let find t session = locked t (fun () -> Hashtbl.find_opt t.entries session)

let register t ~session ?(key = "") ?tenant () =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.entries session with
  | Some entry ->
    (* A keyless entry (a revocation replayed before any grant was
       seen) learns its ledger key from the first caller that knows
       it. *)
    if entry.key = "" && key <> "" then begin
      entry.key <- key;
      entry.tenant <- tenant
    end;
    entry
  | None ->
    let entry =
      {
        session;
        key;
        tenant;
        grant_id = None;
        revoked_at = None;
        horizon = None;
        expired = false;
      }
    in
    Hashtbl.add t.entries session entry;
    entry

let note_granted (entry : entry) grant_id = entry.grant_id <- Some grant_id

let revoke t (entry : entry) ~at =
  locked t @@ fun () ->
  if entry.revoked_at = None then begin
    entry.revoked_at <- Some at;
    t.revoked <- t.revoked + 1
  end

let set_horizon t (entry : entry) ~horizon ~at =
  locked t @@ fun () ->
  entry.horizon <- Some (horizon, at);
  entry.expired <- false;
  (* Front of the cursor: a freshly armed horizon is seen within one
     sweep call even mid-round. *)
  t.cursor <- entry.session :: t.cursor

let note_expired t (entry : entry) =
  locked t @@ fun () ->
  if not entry.expired then begin
    entry.expired <- true;
    t.expired <- t.expired + 1
  end

let armed (entry : entry) =
  (not entry.expired) && entry.revoked_at = None && entry.horizon <> None

(* Entries whose horizon has passed, visiting at most [budget] armed
   entries and resuming where the previous call stopped. The caller
   tombstones each returned entry's grant and then [note_expired]s it —
   kept outside this call so the ledger lock is never taken under the
   consent lock. *)
let due ?(budget = 32) t ~now =
  locked t @@ fun () ->
  if t.cursor = [] then
    t.cursor <-
      Hashtbl.fold
        (fun id entry acc -> if armed entry then id :: acc else acc)
        t.entries [];
  let hits = ref [] in
  let rec go remaining =
    if remaining > 0 then
      match t.cursor with
      | [] -> ()
      | id :: rest ->
        t.cursor <- rest;
        (match Hashtbl.find_opt t.entries id with
        | Some entry when armed entry -> (
          match entry.horizon with
          | Some (h, _) when h <= now -> hits := entry :: !hits
          | _ -> ())
        | _ -> ());
        go (remaining - 1)
  in
  go budget;
  List.rev !hits

(* Every armed entry past [now], regardless of budget — the
   post-recovery pass that applies whatever horizons the crash
   interrupted. *)
let all_due t ~now =
  locked t @@ fun () ->
  Hashtbl.fold
    (fun _ entry acc ->
      if armed entry then
        match entry.horizon with
        | Some (h, _) when h <= now -> entry :: acc
        | _ -> acc
      else acc)
    t.entries []

let entries t =
  locked t (fun () ->
      Hashtbl.fold (fun _ entry acc -> entry :: acc) t.entries [])
  |> List.sort (fun a b ->
         compare
           (String.length a.session, a.session)
           (String.length b.session, b.session))

let counters t =
  locked t @@ fun () ->
  let pending =
    Hashtbl.fold
      (fun _ entry acc -> if armed entry then acc + 1 else acc)
      t.entries 0
  in
  {
    tracked = Hashtbl.length t.entries;
    revoked = t.revoked;
    expired = t.expired;
    pending;
  }
