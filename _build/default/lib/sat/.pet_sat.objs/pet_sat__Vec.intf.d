lib/sat/vec.mli:
