lib/game/payoff.mli: Fmt Pet_minimize Profile
