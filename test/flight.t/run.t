The flight recorder: `pet serve --flight` journals identifier-only
telemetry — delta-encoded metric snapshots, SLO burn gauges, log
events, slow-trace headers and lifecycle marks — into CRC-framed
flight-NNNNNN.log segments beside the write-ahead log, and
`pet flight` reads them back after the process is gone.

The journal lives in the data directory, so `--flight` alone is
refused:

  $ ../../bin/pet.exe serve --flight </dev/null
  pet: --flight requires --data-dir (the journal lives in the data directory)
  [124]

One deterministic stdio run with the recorder attached. The watch
method takes over the stream — frames=2 at interval 0 answers the
same line twice, each response one full metric-snapshot frame — and
every other response must stay byte-identical to a recorder-less run
over a fresh directory:

  $ cat > requests <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"hcov"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s0","valuation":"000011100111"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":6,"method":"watch","params":{"frames":2,"interval":0}}
  > {"pet":1,"id":7,"method":"stats"}
  > REQUESTS
  $ mkdir data flightless
  $ ../../bin/pet.exe serve --deterministic --data-dir data --flight <requests >responses 2>server.log
  $ ../../bin/pet.exe serve --deterministic --data-dir flightless <requests 2>/dev/null | grep -v '"ok":{"watch"' > responses.flightless
  $ grep -c '"ok":{"watch"' responses
  2
  $ grep -v '"ok":{"watch"' responses | cmp - responses.flightless && echo identical
  identical

The run leaves one journal segment beside the WAL:

  $ ls data
  flight-000000.log
  wal-000000.log

`pet flight report` reconstructs the story. Under the deterministic
logical clock every request "takes" one second, so each method's p99
lands in the top latency bucket and every SLO (50ms p99 objective)
reports a latency burn pinned at the cap — exactly the regression the
report exists to surface:

  $ ../../bin/pet.exe flight report data
  flight journal data: 3 records (1 snap, 0 log, 0 trace, 2 meta)
    time range t=5..1892
    lifecycle start at t=5
    lifecycle exit at t=1892
    wal frontier wal-000000.log:732 at t=1890 (byte offsets as in pet audit --json)
  per-method latency (reconstructed):
    choose_option           1 requests  p99 <= 1.04858s
    get_report              1 requests  p99 <= 1.04858s
    new_session             1 requests  p99 <= 1.04858s
    publish_rules           1 requests  p99 <= 1.04858s
    stats                   1 requests  p99 <= 1.04858s
    submit_form             1 requests  p99 <= 1.04858s
    watch                   2 requests  p99 <= 1.04858s
  slo (last window seen / peak burn):
    choose_option                 1 req  p99=1s err=0.0000  burn err=0.00 (peak 0.00) lat=100.00 (peak 100.00)  BREACHED
    get_report                    1 req  p99=1s err=0.0000  burn err=0.00 (peak 0.00) lat=100.00 (peak 100.00)  BREACHED
    new_session                   1 req  p99=1s err=0.0000  burn err=0.00 (peak 0.00) lat=100.00 (peak 100.00)  BREACHED
    publish_rules                 1 req  p99=1s err=0.0000  burn err=0.00 (peak 0.00) lat=100.00 (peak 100.00)  BREACHED
    stats                         1 req  p99=1s err=0.0000  burn err=0.00 (peak 0.00) lat=100.00 (peak 100.00)  BREACHED
    submit_form                   1 req  p99=1s err=0.0000  burn err=0.00 (peak 0.00) lat=100.00 (peak 100.00)  BREACHED
    watch                         2 req  p99=1s err=0.0000  burn err=0.00 (peak 0.00) lat=100.00 (peak 100.00)  BREACHED

The snapshot stamps the write-ahead-log frontier: the offset is the
same byte count the log file itself (and `pet audit --json`) reports,
so a flight record can be lined up against the committed events that
preceded it:

  $ ../../bin/pet.exe flight report data --json > report.json
  $ python3 -c "
  > import json, os
  > d = json.load(open('report.json'))
  > wal = d['wal']
  > print(wal['file'], wal['off'] == os.path.getsize(os.path.join('data', wal['file'])))"
  wal-000000.log True

`pet flight replay` prints each record with its own file:offset
coordinate; the journal opens with the lifecycle mark:

  $ ../../bin/pet.exe flight replay data | head -2 | awk '{print $1}'
  flight-000000.log:0
  flight-000000.log:90
  $ ../../bin/pet.exe flight replay data | head -1 | grep -o '"kind":"meta","t":5,"event":"start"'
  "kind":"meta","t":5,"event":"start"

Alice's raw valuation is in the protocol responses but never in the
journal — flight records are identifier-only by construction:

  $ grep -q 000011100111 responses && echo in-responses
  in-responses
  $ grep -c 000011100111 data/flight-000000.log
  0
  [1]

A crash can tear the final record; the reader truncates the torn tail
silently and the report still parses (the exit mark is simply gone):

  $ python3 -c "import os; f = 'data/flight-000000.log'; os.truncate(f, os.path.getsize(f) - 3)"
  $ ../../bin/pet.exe flight report data | head -4
  flight journal data: 2 records (1 snap, 0 log, 0 trace, 1 meta)
    time range t=5..1890
    lifecycle start at t=5
    wal frontier wal-000000.log:732 at t=1890 (byte offsets as in pet audit --json)

Over TCP the journal rides the group-commit writer domain, one
snapshot per sweep. The sweeper needs the wall clock (it is disabled
under --deterministic), so from here on checks count rather than pin
times. A respondent flow, then `pet top` — the live view over the
same watch frames any client can request:

  $ mkdir tdata
  $ ../../bin/pet.exe serve --tcp 0 --domains 2 --data-dir tdata --flight --port-file port 2>tcp.log & SRV=$!
  $ for i in $(seq 1 100); do [ -s port ] && break; sleep 0.1; done
  $ ../../bin/pet.exe ping 127.0.0.1:$(cat port) <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"hcov"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":3,"method":"get_report","params":{"session":"s1","valuation":"000011100111"}}
  > {"pet":1,"id":4,"method":"choose_option","params":{"session":"s1","option":0}}
  > {"pet":1,"id":5,"method":"submit_form","params":{"session":"s1"}}
  > quit
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"digest":"3c35afd5c479736f19224c053ec534bb","cached":false,"predicates":12,"benefits":1,"mas":6,"eligible":1560}}
  {"pet":1,"id":2,"trace":"t1","ok":{"session":"s1","digest":"3c35afd5c479736f19224c053ec534bb","cached":false}}
  {"pet":1,"id":3,"trace":"t2","ok":{"valuation":"000011100111","granted":["b1"],"options":[{"mas":"0__________1","benefits":["b1"],"po_blank":10,"po_sm":1023,"po_weighted":null,"published":[{"p1":false},{"p12":true}],"deduced":[],"protected":["p2","p3","p4","p5","p6","p7","p8","p9","p10","p11"],"crowd":1024,"recommended":true},{"mas":"0_0__1___11_","benefits":["b1"],"po_blank":7,"po_sm":64,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p6":true},{"p10":true},{"p11":true}],"deduced":[],"protected":["p2","p4","p5","p7","p8","p9","p12"],"crowd":65,"recommended":false},{"mas":"0_0_1110____","benefits":["b1"],"po_blank":6,"po_sm":24,"po_weighted":null,"published":[{"p1":false},{"p3":false},{"p5":true},{"p6":true},{"p7":true},{"p8":false}],"deduced":[],"protected":["p2","p4","p9","p10","p11","p12"],"crowd":25,"recommended":false}],"minimization_ratio":0.83333333333333337}}
  {"pet":1,"id":4,"trace":"t3","ok":{"mas":"0__________1","benefits":["b1"]}}
  {"pet":1,"id":5,"trace":"t4","ok":{"grant":0,"form":"0__________1","benefits":["b1"]}}
  $ ../../bin/pet.exe top 127.0.0.1:$(cat port) --frames 2 --interval 0.2 > top.out
  $ grep -c '^pet top' top.out
  2
  $ grep -c 'get_report.*p99 <=' top.out
  2

Let the sweeper journal a couple of snapshots, then kill -9 — no
shutdown hook runs, yet the journal must still tell the story:

  $ sleep 2.2
  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null
  [137]
  $ ../../bin/pet.exe flight report tdata --json > tcp.json
  $ python3 -c "
  > import json
  > d = json.load(open('tcp.json'))
  > print(d['kinds']['snap'] >= 1, d['unparsed'],
  >       [m['method'] for m in d['methods'] if m['method'] == 'get_report'],
  >       [s['key'] for s in d['slo'] if s['key'] == 'get_report'],
  >       d['wal']['file'])"
  True 0 ['get_report'] ['get_report'] wal-000000.log
  $ grep -l 000011100111 tdata/flight-*.log
  [1]
