module F = Pet_logic.Formula
module Dnf = Pet_logic.Dnf

type t = { dnf : Dnf.t; benefit : string }

let make ~benefit dnf = { dnf; benefit }
let of_formula ~benefit f = { dnf = Dnf.of_formula f; benefit }
let to_formula r = F.Iff (Dnf.to_formula r.dnf, F.Var r.benefit)
let conjunctions r = r.dnf
let triggered_by rho r = Dnf.holds rho r.dnf
let pp ppf r = Fmt.pf ppf "%a <-> %s" Dnf.pp r.dnf r.benefit
