lib/rules/generate.mli: Exposure
