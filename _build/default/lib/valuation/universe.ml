type t = { names : string array; indices : (string, int) Hashtbl.t }

let max_size = 60

let of_names names =
  if names = [] then invalid_arg "Universe.of_names: empty";
  if List.length names > max_size then
    invalid_arg "Universe.of_names: more than 60 names";
  let indices = Hashtbl.create (List.length names) in
  List.iteri
    (fun i name ->
      if Hashtbl.mem indices name then
        invalid_arg ("Universe.of_names: duplicate name " ^ name);
      Hashtbl.add indices name i)
    names;
  { names = Array.of_list names; indices }

let size u = Array.length u.names
let names u = Array.to_list u.names

let name u i =
  if i < 0 || i >= size u then invalid_arg "Universe.name: out of range";
  u.names.(i)

let index u x =
  match Hashtbl.find_opt u.indices x with
  | Some i -> i
  | None -> raise Not_found

let index_opt u x = Hashtbl.find_opt u.indices x
let mem u x = Hashtbl.mem u.indices x

let equal a b =
  Array.length a.names = Array.length b.names
  && Array.for_all2 String.equal a.names b.names

let union a b = of_names (names a @ names b)

let pp ppf u = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma string) (names u)
