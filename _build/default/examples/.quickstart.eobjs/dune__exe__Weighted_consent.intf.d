examples/weighted_consent.mli:
