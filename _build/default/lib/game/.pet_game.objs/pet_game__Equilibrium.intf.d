lib/game/equilibrium.mli: Fmt Payoff Profile
