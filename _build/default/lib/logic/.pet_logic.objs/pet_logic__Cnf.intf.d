lib/logic/cnf.mli: Fmt Formula Literal
