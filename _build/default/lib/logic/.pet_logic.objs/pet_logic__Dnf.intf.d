lib/logic/dnf.mli: Fmt Formula Literal
