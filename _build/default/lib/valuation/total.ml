type t = { u : Universe.t; bits : int }

let universe v = v.u
let bits v = v.bits

let of_bits u bits =
  let n = Universe.size u in
  if bits < 0 || bits lsr n <> 0 then
    invalid_arg "Total.of_bits: bits outside the universe";
  { u; bits }

let make u rho =
  let bits = ref 0 in
  List.iteri
    (fun i name -> if rho name then bits := !bits lor (1 lsl i))
    (Universe.names u);
  { u; bits = !bits }

let of_string u s =
  let n = Universe.size u in
  if String.length s <> n then
    invalid_arg "Total.of_string: length mismatch";
  let bits = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '1' -> bits := !bits lor (1 lsl i)
      | '0' -> ()
      | _ -> invalid_arg "Total.of_string: expected only '0' and '1'")
    s;
  { u; bits = !bits }

let value_at v i =
  if i < 0 || i >= Universe.size v.u then
    invalid_arg "Total.value_at: out of range";
  (v.bits lsr i) land 1 = 1

let value v name = (v.bits lsr Universe.index v.u name) land 1 = 1
let rho v name = value v name

let all u =
  let n = Universe.size u in
  List.init (1 lsl n) (fun bits -> { u; bits })

let equal a b = a.bits = b.bits
let compare a b = Int.compare a.bits b.bits

let to_string v =
  String.init (Universe.size v.u) (fun i ->
      if (v.bits lsr i) land 1 = 1 then '1' else '0')

let pp ppf v = Fmt.string ppf (to_string v)
