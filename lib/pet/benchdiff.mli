(** Perf-trajectory comparison of two BENCH_*.json files.

    The bench harness writes machine-readable summaries
    ([BENCH_server.json], [BENCH_obs.json], [BENCH_store.json]); this
    module walks two such documents in parallel, compares every numeric
    leaf that appears in both, and classifies each change using the
    key's name: throughput keys ([…per_s…], […rate…]) should not drop,
    cost keys ([…_s], […_ms], […seconds…], […overhead…], […latency…],
    […errors…]) should not grow, and everything else ([requests],
    [respondents], …) is informational. A change past the threshold in
    the bad direction is a regression — [pet bench diff] prints the
    findings and exits non-zero on any, which is the CI perf-smoke
    gate. *)

type direction =
  | Higher_better  (** throughput: a drop is a regression *)
  | Lower_better  (** cost: a rise is a regression *)
  | Info  (** compared and reported, never a regression *)

val direction_of_key : string -> direction
(** Classification by key name alone (case-insensitive). Throughput
    patterns win over cost patterns, so [requests_per_s] is
    [Higher_better] despite ending in [_s]. *)

type finding = {
  path : string;  (** dotted path to the leaf, [\[i\]] for list indices *)
  old_value : float;
  new_value : float;
  change : float;
      (** signed fractional change [(new - old) / old]; [infinity] when
          the old value was zero and the new one is not *)
  direction : direction;
  regression : bool;
}

val diff : ?threshold:float -> Json.t -> Json.t -> finding list
(** Compare every numeric leaf present in both documents (objects match
    by key, arrays by index; leaves present on only one side are
    ignored). [threshold] is the fractional change past which a
    directional finding becomes a regression (default [0.25] = 25%). *)

val has_regression : finding list -> bool

val render : finding list -> string
(** Human summary: one line per directional finding (regressions marked
    [REGRESSION]), then a count of informational changes and a verdict
    line. *)
