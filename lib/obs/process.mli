(** Process-level gauges: uptime, [Gc.quick_stat] statistics and domain
    counts.

    {!sync} refreshes [pet_process_uptime_seconds] (wall-clock, even
    under a deterministic metrics clock),
    [pet_process_recommended_domains] and the [pet_gc_*] family
    (minor/major collections, compactions, heap/minor/major words) in
    the global {!Metrics} registry; a no-op while metrics are disabled.
    The service calls it when assembling a snapshot, so [metrics],
    Prometheus scrapes, [watch] frames and flight-recorder snapshots
    all carry fresh process state. *)

val sync : unit -> unit
