(** JSON emission and parsing (RFC 8259) for the machine-readable consent
    reports and the collection-service protocol. Only what the PET needs;
    strings are escaped on emission, and parse errors report the exact
    line/column/offset of the offending byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : t Fmt.t

val parse : string -> (t, string) result
(** Parse a complete JSON document. Integral numbers without a fraction
    or exponent become [Int] (falling back to [Float] past the native
    range); [\u] escapes are decoded to UTF-8, including surrogate
    pairs. The error string carries the 1-based line and column plus the
    0-based byte offset, e.g.
    ["line 1, column 9 (offset 8): expected ',' or '}' in object"].
    Nesting beyond 512 levels is rejected rather than risking a stack
    overflow on hostile input. *)

val parse_exn : string -> t
(** @raise Invalid_argument with the {!parse} error message. *)

val member : string -> t -> t option
(** [member name j] is the field [name] of an [Obj], else [None]. *)

val string_opt : t -> string option
val int_opt : t -> int option

(** A pull-style cursor over one raw line, for callers that know the
    envelope shape they expect and want to skip building an AST. Every
    primitive accepts a strict subset of what {!parse} accepts for the
    same production and decodes the identical value, or fails without
    committing — on [None] the caller re-parses the line with the full
    parser, so using the cursor can never change what a line means,
    only how fast the common shape decodes. The protocol fuzzer holds
    the two against each other on every generated line. *)
module Cursor : sig
  type cursor

  val of_string : string -> cursor
  (** A cursor at offset 0. The cursor never copies the input; the only
      allocations are the [String.sub] of each accepted string span. *)

  val pos : cursor -> int
  val skip_ws : cursor -> unit
  (** Skip the parser's whitespace set (space, tab, LF, CR). *)

  val at_end : cursor -> bool
  val peek : cursor -> char
  (** The byte at the cursor, or ['\000'] past the end (a control byte,
      so it never matches a valid grammar position). *)

  val accept : cursor -> char -> bool
  (** Consume the byte if it matches; no whitespace skipping. *)

  val simple_string : cursor -> string option
  (** A double-quoted string containing no backslash and no control
      byte — the span between the quotes is the decoded value. [None]
      (cursor position unspecified) on anything else, including the
      escaped strings the full parser would accept. *)

  val int : cursor -> int option
  (** A plain integer of at most 18 digits with optional leading [-].
      [None] on longer runs and on fraction/exponent continuations
      (those are float literals). *)
end
