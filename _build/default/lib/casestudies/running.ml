module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Parse = Pet_logic.Parse

let spec =
  {|# District council benefits (running example, Section 2.2)
form p1 p2 p3
benefits b1 b2 b3
rule b1 := p1 | (p2 & p3)
rule b2 := p1 & !p2
rule b3 := p1 & !p3
|}

let exposure () = Pet_rules.Spec.parse_exn spec

let universe = lazy (Universe.of_names [ "p1"; "p2"; "p3" ])

let v1 () = Total.of_string (Lazy.force universe) "011"
let v2 () = Total.of_string (Lazy.force universe) "111"

module Form = Pet_pet.Form
open struct
  type answer = Form.answer = Abool of bool | Aint of int | Achoice of string
  type kind = Form.kind = Kbool | Kint | Kchoice of string list
end

let form () =
  let int_answer get key =
    match get key with Aint n -> n | Abool _ | Achoice _ -> assert false
  in
  let bool_answer get key =
    match get key with Abool b -> b | Aint _ | Achoice _ -> assert false
  in
  Form.create ~exposure:(exposure ())
    ~questions:
      [
        { key = "age"; text = "How old are you?"; kind = Kint };
        { key = "unemployed"; text = "Are you unemployed?"; kind = Kbool };
        {
          key = "location";
          text = "Where in the district do you live?";
          kind = Kchoice [ "suburbs"; "town center" ];
        };
      ]
    ~predicates:
      [
        {
          name = "p1";
          description = "age <= 25";
          compute = (fun get -> int_answer get "age" <= 25);
        };
        {
          name = "p2";
          description = "unemployed";
          compute = (fun get -> bool_answer get "unemployed");
        };
        {
          name = "p3";
          description = "lives in the suburbs";
          compute =
            (fun get ->
              match get "location" with
              | Achoice c -> c = "suburbs"
              | Aint _ | Abool _ -> assert false);
        };
      ]
