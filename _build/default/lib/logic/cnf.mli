(** Conjunctive normal form: a conjunction of clauses (disjunctions of
    literals). Two translations are provided: naive distribution
    (equivalent formula, exponential) and Tseitin (equisatisfiable, linear,
    introduces fresh variables) — the latter feeds the SAT encoder. *)

type clause = Literal.t list
type t = clause list

val of_formula : Formula.t -> t
(** Equivalent CNF by NNF + distribution, with tautological clauses dropped
    and subsumed clauses removed. *)

val to_formula : t -> Formula.t
val holds : (string -> bool) -> t -> bool

val tseitin : fresh_prefix:string -> Formula.t -> t
(** Equisatisfiable CNF. Fresh variables are named
    [fresh_prefix ^ string_of_int k]; the caller must ensure the prefix
    cannot collide with variables of the input formula. Every model of the
    result restricted to the original variables is a model of the input and
    every model of the input extends to a model of the result. *)

val pp : t Fmt.t
