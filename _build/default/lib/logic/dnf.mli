(** Disjunctive normal form (Definition 3.2): a disjunction of
    conjunctions of literals. DNFs are the left-hand sides of decision
    process rules, so they get a first-class representation. *)

type conjunction = Literal.t list
(** Invariant for values built by this module: sorted by {!Literal.compare},
    duplicate-free, and without complementary literals. *)

type t = conjunction list

val normalize_conjunction : Literal.t list -> conjunction option
(** Sort, deduplicate; [None] when the conjunction contains a literal and
    its negation (i.e. is unsatisfiable). *)

val of_formula : Formula.t -> t
(** Equivalent DNF by NNF + distribution. Contradictory conjunctions are
    dropped and subsumed conjunctions removed; exponential in the worst
    case, as any DNF conversion must be. *)

val to_formula : t -> Formula.t

val conjunction_holds : (string -> bool) -> conjunction -> bool
val holds : (string -> bool) -> t -> bool

val vars : t -> string list
(** Sorted, duplicate-free. *)

val subsumes : conjunction -> conjunction -> bool
(** [subsumes c c'] when the literal set of [c] is a subset of [c']'s, so
    [c'] implies [c]. *)

val remove_subsumed : t -> t

val pp : t Fmt.t
val pp_conjunction : conjunction Fmt.t
