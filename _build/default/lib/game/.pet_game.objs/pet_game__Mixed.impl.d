lib/game/mixed.ml: Array Int List Payoff Pet_minimize Profile Random
