lib/logic/literal.ml: Bool Fmt Formula String
