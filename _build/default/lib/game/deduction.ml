module Atlas = Pet_minimize.Atlas
module Algorithm1 = Pet_minimize.Algorithm1
module Partial = Pet_valuation.Partial

type disclosure = {
  published : (string * bool) list;
  deduced : (string * bool) list;
  protected : string list;
  crowd_size : int;
}

let of_move profile ~mas =
  let atlas = Profile.atlas profile in
  let crowd = Profile.crowd profile mas in
  let w = (Atlas.mas atlas mas).Algorithm1.mas in
  {
    published = Partial.bindings w;
    deduced = Payoff.deduced_blanks atlas ~mas ~crowd;
    protected = Payoff.undeducible_blanks atlas ~mas ~crowd;
    crowd_size = List.length crowd;
  }

let for_player profile ~player =
  of_move profile ~mas:(Profile.move_of profile player)

let pp ppf d =
  let pp_lit ppf (name, b) = Fmt.pf ppf "%s=%d" name (if b then 1 else 0) in
  Fmt.pf ppf
    "@[<v>published: %a@,deduced by attacker: %a@,protected: %a@,crowd: %d@]"
    Fmt.(list ~sep:sp pp_lit)
    d.published
    Fmt.(list ~sep:sp pp_lit)
    d.deduced
    Fmt.(list ~sep:sp string)
    d.protected d.crowd_size
