(** Protocol fuzzing of {!Pet_server.Service}: feed seeded random,
    mutated and malformed request lines into a live service instance and
    assert the router's contract — {e every} line gets exactly one
    response line that parses as a protocol envelope carrying ["ok"] or a
    structured ["error"], and nothing ever raises.

    The generator mixes well-formed requests over a pool of small
    generated rule sets (so real sessions, engine compilations and LRU
    evictions happen) with byte-level mutations: truncations, bit flips,
    junk insertions, doubled lines, wrong envelope versions, 600-deep
    nesting (the JSON parser caps at 512) and oversized lines (the
    {!Pet_server.Proto.max_line_bytes} guard). Fully deterministic for a
    given [seed] and [count]. *)

type stats = {
  requests : int;
  ok : int;
  errors : int;  (** structured protocol errors — expected outcomes *)
  invalid_responses : int;
      (** responses that are not valid envelopes — contract violations *)
  crashes : (string * string) list;
      (** (offending line, exception) — contract violations *)
  by_code : (string * int) list;  (** error-code histogram, sorted *)
}

val run : ?seed:int -> count:int -> unit -> stats

val pp : stats Fmt.t
(** One summary line, plus one line per crash. *)
