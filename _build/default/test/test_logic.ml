(* Tests for the CPL toolkit: formulas, literals, normal forms, parser. *)

module F = Pet_logic.Formula
module Literal = Pet_logic.Literal
module Nnf = Pet_logic.Nnf
module Dnf = Pet_logic.Dnf
module Cnf = Pet_logic.Cnf
module Parse = Pet_logic.Parse

let formula_testable = Alcotest.testable F.pp F.equal

(* --- Generator ----------------------------------------------------------- *)

let var_names = [ "p1"; "p2"; "p3"; "p4"; "p5" ]

let gen_formula =
  QCheck2.Gen.(
    sized_size (int_range 0 6) @@ fix (fun self n ->
        if n = 0 then
          oneof
            [
              return F.True;
              return F.False;
              map F.var (oneofl var_names);
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map F.var (oneofl var_names);
              map (fun f -> F.Not f) sub;
              map2 (fun a b -> F.And (a, b)) sub sub;
              map2 (fun a b -> F.Or (a, b)) sub sub;
              map2 (fun a b -> F.Implies (a, b)) sub sub;
              map2 (fun a b -> F.Iff (a, b)) sub sub;
            ]))

let print_formula = F.to_string

(* --- Formula unit tests --------------------------------------------------- *)

let test_eval () =
  let rho = function "a" -> true | "b" -> false | _ -> assert false in
  let a = F.var "a" and b = F.var "b" in
  Alcotest.(check bool) "a" true (F.eval rho a);
  Alcotest.(check bool) "!a" false (F.eval rho (F.neg a));
  Alcotest.(check bool) "a & b" false (F.eval rho (F.And (a, b)));
  Alcotest.(check bool) "a | b" true (F.eval rho (F.Or (a, b)));
  Alcotest.(check bool) "a -> b" false (F.eval rho (F.Implies (a, b)));
  Alcotest.(check bool) "b -> a" true (F.eval rho (F.Implies (b, a)));
  Alcotest.(check bool) "a <-> b" false (F.eval rho (F.Iff (a, b)));
  Alcotest.(check bool) "a <-> a" true (F.eval rho (F.Iff (a, a)))

let test_smart_constructors () =
  let a = F.var "a" in
  Alcotest.check formula_testable "x && true" a F.(a && True);
  Alcotest.check formula_testable "x && false" F.False F.(a && False);
  Alcotest.check formula_testable "x || false" a F.(a || False);
  Alcotest.check formula_testable "x || true" F.True F.(a || True);
  Alcotest.check formula_testable "true => x" a F.(True => a);
  Alcotest.check formula_testable "x => true" F.True F.(a => True);
  Alcotest.check formula_testable "false => x" F.True F.(False => a);
  Alcotest.check formula_testable "x <=> true" a F.(a <=> True);
  Alcotest.check formula_testable "x <=> false" (F.neg a) F.(a <=> False);
  Alcotest.check formula_testable "neg neg" a (F.neg (F.neg a));
  Alcotest.check formula_testable "conj []" F.True (F.conj []);
  Alcotest.check formula_testable "disj []" F.False (F.disj [])

let test_vars () =
  let f = Parse.formula "(b & a) -> (c | a)" in
  Alcotest.(check (list string)) "sorted unique" [ "a"; "b"; "c" ] (F.vars f)

let test_semantic_checks () =
  let t s = Parse.formula s in
  Alcotest.(check bool) "taut" true (F.tautology (t "a | !a"));
  Alcotest.(check bool) "not taut" false (F.tautology (t "a | b"));
  Alcotest.(check bool) "sat" true (F.satisfiable (t "a & b"));
  Alcotest.(check bool) "unsat" false (F.satisfiable (t "a & !a"));
  Alcotest.(check bool) "entails" true (F.entails (t "a & b") (t "a"));
  Alcotest.(check bool) "not entails" false (F.entails (t "a | b") (t "a"));
  Alcotest.(check bool) "equiv" true
    (F.equivalent (t "!(a & b)") (t "!a | !b"))

let test_map_vars () =
  let f = Parse.formula "a -> b" in
  let s = function "a" -> F.var "x" | v -> F.var v in
  Alcotest.check formula_testable "rename" (Parse.formula "x -> b")
    (F.map_vars s f)

(* --- Literals -------------------------------------------------------------- *)

let test_literals () =
  let p = Literal.pos "x" and n = Literal.neg "x" in
  Alcotest.(check bool) "negate" true (Literal.equal (Literal.negate p) n);
  Alcotest.(check bool) "of_formula pos" true
    (Literal.of_formula (F.var "x") = Some p);
  Alcotest.(check bool) "of_formula neg" true
    (Literal.of_formula (F.Not (F.var "x")) = Some n);
  Alcotest.(check bool) "of_formula other" true
    (Literal.of_formula (F.And (F.var "x", F.var "y")) = None);
  Alcotest.(check bool) "holds" true (Literal.holds (fun _ -> true) p);
  Alcotest.(check bool) "neg holds" false (Literal.holds (fun _ -> true) n)

(* --- Parser ----------------------------------------------------------------- *)

let test_parse_precedence () =
  let check s expected =
    Alcotest.check formula_testable s expected (Parse.formula s)
  in
  check "a & b | c" (F.Or (F.And (F.var "a", F.var "b"), F.var "c"));
  check "a | b & c" (F.Or (F.var "a", F.And (F.var "b", F.var "c")));
  check "!a & b" (F.And (F.Not (F.var "a"), F.var "b"));
  check "a -> b -> c"
    (F.Implies (F.var "a", F.Implies (F.var "b", F.var "c")));
  check "a <-> b | c" (F.Iff (F.var "a", F.Or (F.var "b", F.var "c")));
  check "(a | b) & c" (F.And (F.Or (F.var "a", F.var "b"), F.var "c"));
  check "a and b or not c"
    (F.Or (F.And (F.var "a", F.var "b"), F.Not (F.var "c")))

let test_parse_errors () =
  let fails s =
    match Parse.formula s with
    | exception Parse.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "trailing" true (fails "a b");
  Alcotest.(check bool) "unclosed" true (fails "(a | b");
  Alcotest.(check bool) "lone arrow" true (fails "a - b");
  Alcotest.(check bool) "bad char" true (fails "a @ b");
  Alcotest.(check bool) "bad iff" true (fails "a <- b");
  match Parse.formula_result "a &" with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error m ->
    Alcotest.(check bool) "message mentions offset" true
      (String.length m > 0)

let prop_parse_print_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"parse (print f) = f" ~print:print_formula
    gen_formula (fun f -> F.equal (Parse.formula (F.to_string f)) f)

let test_parse_alternative_spellings () =
  let check s expected =
    Alcotest.check formula_testable s (Parse.formula expected) (Parse.formula s)
  in
  (* C-style and word spellings of the connectives. *)
  check "a && b" "a & b";
  check "a || b" "a | b";
  check "~a" "!a";
  check "not a" "!a";
  check "a and b or not c" "(a & b) | !c";
  (* Identifiers may carry digits, underscores and primes. *)
  Alcotest.(check (list string)) "identifier charset"
    [ "p1"; "p3'"; "p_2" ]
    (F.vars (Parse.formula "p1 & p_2 & p3'"))

let test_parse_positions () =
  (* The reported offset points at the offending token. *)
  match Parse.formula "ab @ cd" with
  | exception Parse.Error { position; _ } ->
    Alcotest.(check int) "offset of '@'" 3 position
  | _ -> Alcotest.fail "expected error"

(* Structural helpers behave sensibly. *)
let test_size_and_map () =
  let f = Parse.formula "!(a & b) -> c" in
  Alcotest.(check int) "size" 6 (F.size f);
  (* map_vars with the identity substitution only renormalizes. *)
  Alcotest.(check bool) "identity map equivalent" true
    (F.equivalent f (F.map_vars F.var f));
  (* Substituting constants evaluates partially. *)
  let g = F.map_vars (fun x -> if x = "a" then F.True else F.var x) f in
  Alcotest.(check bool) "a:=true" true (F.equivalent g (Parse.formula "b | c"))

let prop_all_assignments_complete =
  QCheck2.Test.make ~count:100 ~name:"all_assignments enumerates 2^n"
    ~print:string_of_int
    QCheck2.Gen.(int_range 0 6)
    (fun n ->
      let names = List.init n (fun i -> Printf.sprintf "x%d" i) in
      let assignments = F.all_assignments names in
      List.length assignments = 1 lsl n
      && List.length
           (List.sort_uniq Stdlib.compare
              (List.map (fun rho -> List.map rho names) assignments))
         = 1 lsl n)

(* --- NNF --------------------------------------------------------------------- *)

let prop_nnf_equivalent =
  QCheck2.Test.make ~count:500 ~name:"NNF is equivalent" ~print:print_formula
    gen_formula (fun f -> F.equivalent f (Nnf.of_formula f))

let prop_nnf_shape =
  QCheck2.Test.make ~count:500 ~name:"NNF has NNF shape" ~print:print_formula
    gen_formula (fun f -> Nnf.is_nnf (Nnf.of_formula f))

(* --- DNF ---------------------------------------------------------------------- *)

let prop_dnf_equivalent =
  QCheck2.Test.make ~count:300 ~name:"DNF is equivalent" ~print:print_formula
    gen_formula (fun f -> F.equivalent f (Dnf.to_formula (Dnf.of_formula f)))

let prop_dnf_no_subsumption =
  QCheck2.Test.make ~count:300 ~name:"DNF has no subsumed conjunction"
    ~print:print_formula gen_formula (fun f ->
      let d = Dnf.of_formula f in
      List.for_all
        (fun c ->
          List.for_all
            (fun c' -> c == c' || not (Dnf.subsumes c' c))
            d)
        d)

let test_dnf_normalize () =
  let open Literal in
  Alcotest.(check bool) "contradiction -> None" true
    (Dnf.normalize_conjunction [ pos "a"; neg "a" ] = None);
  Alcotest.(check bool) "dedup + sort" true
    (Dnf.normalize_conjunction [ pos "b"; pos "a"; pos "b" ]
    = Some [ pos "a"; pos "b" ])

let test_dnf_holds () =
  let d = Dnf.of_formula (Parse.formula "(a & !b) | c") in
  let rho_ab = function "a" -> true | _ -> false in
  let rho_b = function "b" -> true | _ -> false in
  Alcotest.(check bool) "a!b holds" true (Dnf.holds rho_ab d);
  Alcotest.(check bool) "b alone fails" false (Dnf.holds rho_b d)

(* --- CNF ----------------------------------------------------------------------- *)

let prop_cnf_equivalent =
  QCheck2.Test.make ~count:300 ~name:"CNF is equivalent" ~print:print_formula
    gen_formula (fun f -> F.equivalent f (Cnf.to_formula (Cnf.of_formula f)))

(* Tseitin is equisatisfiable and model-projecting: every model of f extends
   to a model of the clauses, and every model of the clauses restricts to a
   model of f. We check both directions by enumeration. *)
let prop_tseitin_faithful =
  QCheck2.Test.make ~count:300 ~name:"Tseitin CNF is faithful"
    ~print:print_formula gen_formula (fun f ->
      let cnf = Cnf.tseitin ~fresh_prefix:"@t" f in
      let cnf_formula = Cnf.to_formula cnf in
      let all_vars =
        List.sort_uniq String.compare (F.vars f @ F.vars cnf_formula)
      in
      List.for_all
        (fun rho ->
          (* model of clauses -> model of f *)
          (not (F.eval rho cnf_formula)) || F.eval rho f)
        (F.all_assignments all_vars)
      &&
      (* satisfiability is preserved in both directions *)
      Bool.equal (F.satisfiable f) (F.satisfiable cnf_formula))

let test_tseitin_shapes () =
  Alcotest.(check bool) "true gives no clause" true
    (Cnf.tseitin ~fresh_prefix:"@t" F.True = []);
  Alcotest.(check bool) "false gives empty clause" true
    (Cnf.tseitin ~fresh_prefix:"@t" F.False = [ [] ]);
  let cnf = Cnf.tseitin ~fresh_prefix:"@t" (Parse.formula "a & (b | !c)") in
  Alcotest.(check bool) "linear size" true (List.length cnf <= 8)

let () =
  let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests) in
  Alcotest.run "pet_logic"
    [
      ( "formula",
        [
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "smart constructors" `Quick
            test_smart_constructors;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "semantic checks" `Quick test_semantic_checks;
          Alcotest.test_case "map_vars" `Quick test_map_vars;
        ] );
      ("literal", [ Alcotest.test_case "literals" `Quick test_literals ]);
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "alternative spellings" `Quick
            test_parse_alternative_spellings;
          Alcotest.test_case "error positions" `Quick test_parse_positions;
        ] );
      ( "structure",
        [ Alcotest.test_case "size and map" `Quick test_size_and_map ] );
      ( "dnf-cnf-unit",
        [
          Alcotest.test_case "dnf normalize" `Quick test_dnf_normalize;
          Alcotest.test_case "dnf holds" `Quick test_dnf_holds;
          Alcotest.test_case "tseitin shapes" `Quick test_tseitin_shapes;
        ] );
      qsuite "properties"
        [
          prop_parse_print_roundtrip;
          prop_all_assignments_complete;
          prop_nnf_equivalent;
          prop_nnf_shape;
          prop_dnf_equivalent;
          prop_dnf_no_subsumption;
          prop_cnf_equivalent;
          prop_tseitin_faithful;
        ];
    ]
