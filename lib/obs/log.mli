(** Leveled structured logging, correlated with {!Trace}.

    One event per line, machine-splittable in both shapes:
    - human (default): [[level] event key=value …]
    - JSON (set {!set_json}):
      [{"ts":…,"level":"…","event":"…","trace":"…",key:value,…}]

    Every line logged while a trace capture is running carries that
    trace's id (the [trace=…] key / ["trace"] field), so an operator can
    jump from a log line to the matching [trace get] capture and back.
    Fields use the closed {!Trace.value} type — like trace annotations,
    logs carry identifiers, never valuations (DESIGN.md §12).

    The timestamp is read from {!Metrics.now} and only in JSON mode, so
    a deterministic run ([pet serve --deterministic]) logs byte-stable
    lines in either shape: the human shape reads no clock at all, the
    JSON shape reads the logical obs clock.

    Lines go to the sink (default: standard error, line-buffered via
    [prerr_endline]); tests and embedders install their own with
    {!set_sink}. Events below {!level} cost one comparison. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Inverse of {!level_name} (case-insensitive). *)

val set_level : level -> unit
(** Minimum level that is emitted (default [Info]). *)

val level : unit -> level

val set_json : bool -> unit
(** Emit JSON object lines instead of the human shape (default false). *)

val set_sink : (string -> unit) -> unit
(** Replace the line consumer (the line has no trailing newline).
    Default writes to standard error. *)

val log : level -> ?fields:(string * Trace.value) list -> string -> unit
(** [log lvl ~fields event] emits one line if [lvl >= level ()]. *)

val debug : ?fields:(string * Trace.value) list -> string -> unit
val info : ?fields:(string * Trace.value) list -> string -> unit
val warn : ?fields:(string * Trace.value) list -> string -> unit
val error : ?fields:(string * Trace.value) list -> string -> unit
