(** Greedy shrinking of a failing exposure problem to a minimal
    reproducer.

    Each step offers every one-element reduction of the problem — drop a
    rule (with its benefit), drop a constraint, drop one conjunction of a
    rule's DNF, drop one literal of a conjunction, drop the predicates no
    rule or constraint mentions — and commits to the first reduction on
    which [still_fails] still holds, repeating until no reduction
    reproduces the failure. Termination is by the strictly decreasing
    problem size; the result is locally minimal (1-minimal), which in
    practice is a handful of rules ready to paste into a unit test. *)

val shrink :
  still_fails:(Pet_rules.Exposure.t -> bool) ->
  Pet_rules.Exposure.t ->
  Pet_rules.Exposure.t
(** [still_fails] should re-run the checks that originally failed and
    answer whether the {e same} failure (same stage) reoccurs — see
    {!Harness.reproduce}, which wires the stage fingerprint for you. A
    candidate on which [still_fails] raises is not adopted. *)

val candidates : Pet_rules.Exposure.t -> Pet_rules.Exposure.t list
(** One step's reductions, most aggressive first (exposed for tests). *)

val to_dsl : Pet_rules.Exposure.t -> string
(** The reproducer as rule-DSL text ({!Pet_rules.Spec.to_string}). *)
