test/test_bdd.ml: Alcotest Array Bool Fun List Pet_bdd Pet_logic QCheck2 QCheck_alcotest Stdlib
