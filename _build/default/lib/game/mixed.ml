module Atlas = Pet_minimize.Atlas

type t = {
  atlas : Atlas.t;
  strategies : (int * float) list array; (* ascending MAS index, sums to 1 *)
}

let of_pure profile =
  let atlas = Profile.atlas profile in
  {
    atlas;
    strategies =
      Array.init (Atlas.player_count atlas) (fun i ->
          [ (Profile.move_of profile i, 1.0) ]);
  }

let atlas t = t.atlas

let strategy t ~player =
  if player < 0 || player >= Array.length t.strategies then
    invalid_arg "Mixed.strategy: out of range";
  t.strategies.(player)

let normalize dist =
  let dist = List.filter (fun (_, p) -> p > 1e-12) dist in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
  List.map (fun (m, p) -> (m, p /. total)) dist
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let perturb t ~player ~mas ~epsilon =
  if epsilon < 0. || epsilon > 1. then invalid_arg "Mixed.perturb: epsilon";
  if not (List.mem mas (Atlas.choices_of_player t.atlas player)) then
    invalid_arg "Mixed.perturb: MAS is not a choice of the player";
  let current = t.strategies.(player) in
  let scaled = List.map (fun (m, p) -> (m, p *. (1. -. epsilon))) current in
  let bumped =
    if List.mem_assoc mas scaled then
      List.map
        (fun (m, p) -> if m = mas then (m, p +. epsilon) else (m, p))
        scaled
    else (mas, epsilon) :: scaled
  in
  let strategies = Array.copy t.strategies in
  strategies.(player) <- normalize bumped;
  { t with strategies }

let draw rng dist =
  let u = Random.State.float rng 1.0 in
  let rec go acc = function
    | [] -> assert false
    | [ (m, _) ] -> m
    | (m, p) :: rest -> if u < acc +. p then m else go (acc +. p) rest
  in
  go 0. dist

let sample ~seed t =
  let rng = Random.State.make [| seed |] in
  let moves =
    Array.map (fun dist -> draw rng dist) t.strategies
  in
  Profile.make t.atlas (fun i -> moves.(i))

let expected_payoff ?(samples = 200) ~seed t ~player kind =
  let degenerate =
    Array.for_all (fun dist -> List.length dist = 1) t.strategies
  in
  let samples = if degenerate then 1 else samples in
  let total = ref 0. in
  for k = 0 to samples - 1 do
    let profile = sample ~seed:(seed + k) t in
    total := !total +. Payoff.of_profile profile kind ~player
  done;
  !total /. float_of_int samples
