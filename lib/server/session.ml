module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial

type state = Created | Reported | Chosen | Submitted

let state_name = function
  | Created -> "created"
  | Reported -> "reported"
  | Chosen -> "chosen"
  | Submitted -> "submitted"

type t = {
  id : string;
  digest : string;
  created_at : float;
  mutable last_active : float;
  mutable state : state;
  mutable valuation : Total.t option;
  mutable options : (Partial.t * string list) list;
  mutable chosen : (Partial.t * string list) option;
  mutable grant_id : int option;
}

type store = {
  ttl : float;
  sessions : (string, t) Hashtbl.t;
  mutable next_id : int;
  mutable created : int;
  mutable expired : int;
}

type counters = { active : int; created : int; expired : int }

let create_store ?(ttl = 3600.) () =
  { ttl; sessions = Hashtbl.create 64; next_id = 0; created = 0; expired = 0 }

let create store ~digest ~now =
  let id = Printf.sprintf "s%d" store.next_id in
  store.next_id <- store.next_id + 1;
  store.created <- store.created + 1;
  let session =
    {
      id;
      digest;
      created_at = now;
      last_active = now;
      state = Created;
      valuation = None;
      options = [];
      chosen = None;
      grant_id = None;
    }
  in
  Hashtbl.replace store.sessions id session;
  session

let is_expired store session ~now =
  store.ttl > 0. && now -. session.last_active > store.ttl

let expire store session =
  Hashtbl.remove store.sessions session.id;
  store.expired <- store.expired + 1

let find store id ~now =
  match Hashtbl.find_opt store.sessions id with
  | None -> Error `Unknown
  | Some session ->
    if is_expired store session ~now then begin
      expire store session;
      Error `Expired
    end
    else Ok session

let touch session ~now = session.last_active <- now

let sweep store ~now =
  let stale =
    Hashtbl.fold
      (fun _ session acc ->
        if is_expired store session ~now then session :: acc else acc)
      store.sessions []
  in
  List.iter (expire store) stale;
  List.length stale

let counters store =
  {
    active = Hashtbl.length store.sessions;
    created = store.created;
    expired = store.expired;
  }
