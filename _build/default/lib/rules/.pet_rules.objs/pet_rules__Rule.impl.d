lib/rules/rule.ml: Fmt Pet_logic
