(** The "solidarity" extension sketched in the paper's future work
    (Section 7): sometimes moving very few players onto a move — at a
    small cost to them — raises the [PO_blank] of everyone forced to play
    it. In the H-cov study, recruiting a single extra player onto MAS
    [0_0_1110____] lifts its 24 forced players from [PO_blank = 5] to
    [6]. *)

type recruit = {
  player : int;
  previous_mas : int;
  previous_payoff : float;  (** the recruit's [PO_blank] before moving *)
  new_payoff : float;  (** after moving (evaluated on the updated crowds) *)
}

type result = {
  mas : int;
  crowd_before : int;
  payoff_before : float;
  payoff_after : float;
  recruits : recruit list;
  beneficiaries : int;  (** players of the move before recruiting *)
}

val improve : ?max_recruits:int -> Profile.t -> mas:int -> result option
(** Greedily recruit potential players of the move (currently playing
    something else) that maximize the move's [PO_blank], stopping when no
    recruit helps or [max_recruits] (default 3) is reached. [None] when
    no recruit improves the payoff. *)

type plan = {
  steps : result list;  (** in application order *)
  final : Profile.t;  (** the profile with all recruits moved *)
  recruited : int;
  floor_before : float;  (** worst [PO_blank] over played moves, before *)
  floor_after : float;
}

val plan : ?budget:int -> Profile.t -> plan
(** The "solidarity strategy" sketched in the paper's future work:
    repeatedly lift the currently worst-off move (lowest [PO_blank]
    among moves that are actually played) by recruiting volunteers,
    until no move can be improved or the recruit [budget] (default 5) is
    spent. Each step re-evaluates the whole profile, so a volunteer's
    departure lowering their former crowd is accounted for. *)

val pp : result Fmt.t
