(* Cross-layer stress tests on generated exposure problems: the whole
   pipeline (engine -> Algorithm 1 -> atlas -> Algorithm 2 -> reports)
   holds its invariants on problems none of us wrote by hand. *)

module Universe = Pet_valuation.Universe
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Generate = Pet_rules.Generate
module A1 = Pet_minimize.Algorithm1
module Atlas = Pet_minimize.Atlas
module Baseline = Pet_minimize.Baseline
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium
module Report = Pet_pet.Report
module Workflow = Pet_pet.Workflow

let seeds = [ 1; 2; 3; 4; 5 ]

let configs =
  [
    { Generate.default with Generate.predicates = 6 };
    Generate.default;
    { Generate.default with Generate.predicates = 10; benefits = 3 };
  ]

let each_problem ?(configs = configs) f =
  List.iter
    (fun config -> List.iter (fun seed -> f (Generate.exposure ~config ~seed ())) seeds)
    configs

(* Cap per-problem applicant scans so the suite stays fast. *)
let sample k l = List.filteri (fun i _ -> i < k) l

let test_generator_reproducible () =
  let a = Generate.exposure ~seed:7 () and b = Generate.exposure ~seed:7 () in
  Alcotest.(check bool) "same formula" true
    (Pet_logic.Formula.equal (Exposure.to_formula a) (Exposure.to_formula b));
  let c = Generate.exposure ~seed:8 () in
  Alcotest.(check bool) "different seeds differ" false
    (Pet_logic.Formula.equal (Exposure.to_formula a) (Exposure.to_formula c))

let test_generator_validation () =
  let fails config =
    match Generate.exposure ~config ~seed:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "predicates < 2" true
    (fails { Generate.default with Generate.predicates = 1 });
  Alcotest.(check bool) "benefits < 1" true
    (fails { Generate.default with Generate.benefits = 0 })

(* Every generated constraint set is chainable and satisfiable. *)
let test_constraints_satisfiable () =
  each_problem (fun e ->
      Alcotest.(check bool) "has realistic valuations" true
        (Exposure.realistic e <> []))

(* The full pipeline per problem. *)
let test_pipeline_invariants () =
  each_problem (fun e ->
      let engine = Engine.create ~backend:Engine.Bdd e in
      let atlas = Atlas.build engine in
      let n = Atlas.player_count atlas in
      if n > 0 then begin
        (* Atlas consistency: crowds and choices are mutually inverse. *)
        List.iter
          (fun i ->
            let choices = Atlas.choices_of_player atlas i in
            Alcotest.(check bool) "player has a choice" true (choices <> []);
            List.iter
              (fun m ->
                Alcotest.(check bool) "edge symmetric" true
                  (List.mem i (Atlas.players_of_mas atlas m)))
              choices)
          (List.init n Fun.id);
        (* Every MAS proves what it says (via an independent backend). *)
        let sat_engine = Engine.create ~backend:Engine.Sat e in
        List.iter
          (fun (c : A1.choice) ->
            Alcotest.(check (list string)) "benefits agree" c.A1.benefits
              (Engine.benefits sat_engine c.A1.mas))
          (Atlas.mas_list atlas);
        (* Algorithm 2 + refinement is a Nash equilibrium. *)
        let profile = Strategy.compute atlas in
        let refined, converged = Equilibrium.refine profile Payoff.Blank in
        Alcotest.(check bool) "refinement converges" true converged;
        Alcotest.(check bool) "nash" true
          (Equilibrium.is_nash refined Payoff.Blank);
        (* Reports build for realistic eligible applicants and keep full
           accuracy: the recommended form proves all due benefits. *)
        List.iter
          (fun v ->
            match Atlas.find_player atlas v with
            | None -> ()
            | Some _ ->
              let r = Report.build atlas refined v in
              let recommended = Report.recommended r in
              Alcotest.(check (list string)) "accuracy preserved"
                (Engine.benefits_of_total engine v)
                (Engine.benefits sat_engine recommended.Report.mas))
          (sample 50 (Exposure.eligible e))
      end)

(* The provider workflow accepts every recommended submission and the
   archived record passes the audit. *)
let test_workflow_on_generated () =
  List.iter
    (fun seed ->
      let e = Generate.exposure ~seed () in
      let provider = Workflow.provider e in
      List.iter
        (fun v ->
          match Workflow.report_for provider v with
          | Error _ -> ()
          | Ok report ->
            let choice = Report.recommended report in
            (match Workflow.submit provider choice.Report.mas with
            | Error m -> Alcotest.fail ("submit rejected a MAS: " ^ m)
            | Ok grant ->
              Alcotest.(check bool) "audit" true
                (Workflow.audit provider grant)))
        (sample 50 (Exposure.eligible e)))
    seeds

(* Baseline discloses a superset of some MAS's information need: its
   claimed blanks never beat the best MAS's blank count. *)
let test_baseline_never_beats_mas () =
  (* Exact mode is exponential; keep it on the small configuration. *)
  each_problem
    ~configs:[ { Generate.default with Generate.predicates = 6 } ]
    (fun e ->
      let engine = Engine.create ~backend:Engine.Bdd e in
      List.iter
        (fun v ->
          if Engine.benefits_of_total engine v <> [] then begin
            let best_mas_domain =
              List.fold_left
                (fun acc (c : A1.choice) ->
                  min acc (Partial.domain_size c.A1.mas))
                max_int (A1.mas_of ~mode:A1.Exact engine v)
            in
            let b = Baseline.minimize engine v in
            Alcotest.(check bool) "exact MAS at most baseline size" true
              (best_mas_domain
              <= Partial.domain_size b.Baseline.disclosed)
          end)
        (sample 40 (Exposure.eligible e)))

(* The rule-file DSL roundtrips every generated problem. *)
let test_spec_roundtrip_generated () =
  each_problem (fun e ->
      let printed = Pet_rules.Spec.to_string e in
      match Pet_rules.Spec.parse printed with
      | Error m -> Alcotest.fail m
      | Ok e' ->
        Alcotest.(check bool) "equivalent" true
          (Pet_logic.Formula.equivalent (Exposure.to_formula e)
             (Exposure.to_formula e')))

let () =
  Alcotest.run "pet_stress"
    [
      ( "generator",
        [
          Alcotest.test_case "reproducible" `Quick test_generator_reproducible;
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "satisfiable constraints" `Quick
            test_constraints_satisfiable;
          Alcotest.test_case "spec roundtrip" `Quick
            test_spec_roundtrip_generated;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "invariants" `Slow test_pipeline_invariants;
          Alcotest.test_case "workflow" `Slow test_workflow_on_generated;
          Alcotest.test_case "baseline vs exact MAS" `Slow
            test_baseline_never_beats_mas;
        ] );
    ]
