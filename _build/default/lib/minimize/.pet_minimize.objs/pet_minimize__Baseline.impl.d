lib/minimize/baseline.ml: List Pet_logic Pet_rules Pet_valuation
