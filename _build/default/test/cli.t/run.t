The minimize subcommand prints the MAS of a fully filled form
(Algorithm 1 on the paper's running example):

  $ ../../bin/pet.exe minimize running -v 111
  _11  proves {b1}
  1__  proves {b1}

  $ ../../bin/pet.exe minimize running -v 100
  100  proves {b1, b2, b3}

The consent report (Algorithm 2 recommendation, payoffs, disclosures):

  $ ../../bin/pet.exe inform running -v 111
  Your full form:    111
  Benefits due:      b1
  You have 2 way(s) to prove eligibility:
    _11   <- recommended
      hides 1 predicate(s) from any attacker; 1 other applicant(s) look identical
    1__
      hides 0 predicate(s) from any attacker; 0 other applicant(s) look identical
      note: not sending p2, p3 still reveals p2=1, p3=1
  Minimization: 33% of the form stays blank

JSON output for machine consumption:

  $ ../../bin/pet.exe inform running -v 011 --json
  {"valuation":"011","granted":["b1"],"options":[{"mas":"_11","benefits":["b1"],"po_blank":1,"po_sm":1,"po_weighted":null,"published":[{"p2":true},{"p3":true}],"deduced":[],"protected":["p1"],"crowd":2,"recommended":true}],"minimization_ratio":0.33333333333333331}

The atlas subcommand reproduces Tables 2 and 3 for H-cov:

  $ ../../bin/pet.exe atlas hcov
  Number of MAS: 6
  Number of valuations: 1560
  Number of predicates per MAS: 2 to 6
  Number of valuations with 1 MAS: 1272
  Number of valuations with 2 MAS: 280
  Number of valuations with 3 MAS: 8
  
  
  MAS                  potential   forced    plays    payoff
  0__________1              1024      744     1024        10
  0_0__1___11_               128       56       64         6
  0_0_10__1___               128       64       64         6
  0_0_1110____                64       24       24         5
  0_110_______               256      128      128         7
  110_0_______               256      256      256         8

Figure 1 as DOT:

  $ ../../bin/pet.exe graph running --figure lattice | head -5
  digraph exposure {
    rankdir=BT;
    node [shape=box];
    "_11" [label="_11\n{b1}", style=bold];
    "011" [label="011\n{b1}", fontname="Times-Italic"];

Errors are reported cleanly:

  $ ../../bin/pet.exe minimize running -v 11
  pet: Total.of_string: length mismatch
  [124]

  $ ../../bin/pet.exe check /nonexistent/file.rules
  pet: /nonexistent/file.rules: No such file or directory
  [124]

Weighting a sensitive predicate (Section 4.2's extension) can flip the
recommendation — Alice keeps "separated" deniable at the cost of
publishing her student path:

  $ ../../bin/pet.exe inform hcov -v 000011100111 --weight p12=5 | grep recommended
    0_0__1___11_   <- recommended

  $ ../../bin/pet.exe inform hcov -v 000011100111 --weight nosuch=2
  pet: --weight: unknown predicate nosuch
  [124]

Population simulation:

  $ ../../bin/pet.exe simulate running
  population: 5 eligible valuations
  equilibrium: Algorithm 2, Nash: true
  average minimization: 26.7% of the form left blank

Checking a user-authored rule file reports statistics and warns about
collected-but-unused predicates:

  $ cat > parking.rules <<'RULES'
  > form resident senior disabled electric unused_marital_status
  > benefits free_parking charging_discount
  > rule free_parking := resident & (senior | disabled)
  > rule charging_discount := resident & electric
  > RULES

  $ ../../bin/pet.exe check parking.rules
  form resident senior disabled electric unused_marital_status
  benefits free_parking charging_discount
  rule free_parking := disabled & resident | resident & senior
  rule charging_discount := electric & resident
  
  # 5 predicates, 2 benefits, 2 rules, 0 constraints
  # warning: predicate unused_marital_status is collected but never used
  # 32 realistic valuations, 14 eligible

  $ ../../bin/pet.exe inform parking.rules -v 11010
  Your full form:    11010
  Benefits due:      free_parking, charging_discount
  You have 1 way(s) to prove eligibility:
    11_1_   <- recommended
      hides 1 predicate(s) from any attacker; 1 other applicant(s) look identical
      note: not sending disabled still reveals disabled=0
  Minimization: 40% of the form stays blank

A malformed rule file fails with the line number:

  $ cat > broken.rules <<'RULES'
  > form a b
  > benefits x
  > rule x := a &
  > RULES

  $ ../../bin/pet.exe check broken.rules
  pet: line 3: parse error at offset 4: expected a formula but found end of input
  [124]

The typed questionnaire (the paper's GUI workflow): Alice answers the
real H-cov questions; the raw age is compiled to the age-band
predicates and discarded.

  $ ../../bin/pet.exe fill hcov <<'ANSWERS'
  > age = 24
  > child_welfare = no
  > broken_ties = no
  > same_roof = no
  > separate_tax = yes
  > alimony = no
  > has_child = no
  > student = yes
  > emergency_aid = yes
  > separated = yes
  > ANSWERS
  Your full form:    000011100111
  Benefits due:      b1
  You have 3 way(s) to prove eligibility:
    0__________1   <- recommended
      hides 10 predicate(s) from any attacker; 1023 other applicant(s) look identical
    0_0__1___11_
      hides 7 predicate(s) from any attacker; 64 other applicant(s) look identical
    0_0_1110____
      hides 6 predicate(s) from any attacker; 24 other applicant(s) look identical
  Minimization: 83% of the form stays blank

Ill-typed or missing answers are rejected before anything is computed:

  $ ../../bin/pet.exe fill hcov <<'ANSWERS'
  > age = twenty
  > ANSWERS
  pet: age: expected a number
  [124]

  $ ../../bin/pet.exe fill running <<'ANSWERS'
  > age = 28
  > unemployed = yes
  > ANSWERS
  pet: missing answer for question location
  [124]

The over-collection audit finds predicates that no minimized proof ever
needs — here q is asked for and even mentioned in the rules, but p
alone always suffices:

  $ cat > overcollect.rules <<'RULES'
  > form p q r
  > benefits b
  > rule b := p | (p & q)
  > RULES

  $ ../../bin/pet.exe audit overcollect.rules
  1 MAS over 4 valuations
  
  predicate                  in MAS players needing it
  p                               1                  4
  q                               0                  0
  r                               0                  0
  
  over-collection: 2 of 3 predicates are never required by any minimized proof:
    q, r

  $ ../../bin/pet.exe audit hcov | tail -1
  every predicate is needed by some minimized proof

The quickstart example runs end to end:

  $ ../../examples/quickstart.exe
  --- consent report ---
  Your full form:    011
  Benefits due:      b1
  You have 1 way(s) to prove eligibility:
    _11   <- recommended
      hides 1 predicate(s) from any attacker; 1 other applicant(s) look identical
  Minimization: 33% of the form stays blank
  
  --- submitting _11 ---
  granted: b1
  audit: true

Forms too large to enumerate are refused with a pointer to the symbolic
audit, which handles them fine:

  $ python3 -c "
  > names = ' '.join('a%d' % i for i in range(1, 26))
  > print('form ' + names)
  > print('benefits b')
  > print('rule b := a1 | (a2 & a3) | (a4 & a5 & a6)')
  > " > big.rules

  $ ../../bin/pet.exe atlas big.rules
  pet: Atlas.build: form too large to enumerate; use Symbolic.build for the global statistics
  [124]

  $ ../../bin/pet.exe audit big.rules | head -3
  3 MAS over 22544384 valuations
  
  predicate                  in MAS players needing it
