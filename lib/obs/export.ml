(* Prometheus float rendering: integral values print without an
   exponent so the common case (counts, logical-clock sums) stays
   readable and byte-stable; everything else uses %.9g. *)
let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let le_str bound = if bound = infinity then "+Inf" else float_str bound

(* "name{a="b"}" -> ("name", Some "a=\"b\"") *)
let split_labels rendered =
  match String.index_opt rendered '{' with
  | None -> (rendered, None)
  | Some i ->
    ( String.sub rendered 0 i,
      Some (String.sub rendered (i + 1) (String.length rendered - i - 2)) )

(* [sample base ~suffix ~labels ~extra] renders "base_suffix{labels,extra}". *)
let sample base ~suffix ~labels ~extra =
  let labelset =
    match (labels, extra) with
    | None, None -> ""
    | Some l, None -> Printf.sprintf "{%s}" l
    | None, Some e -> Printf.sprintf "{%s}" e
    | Some l, Some e -> Printf.sprintf "{%s,%s}" l e
  in
  base ^ suffix ^ labelset

(* HELP text escaping per the exposition format: backslash and newline
   only (label values additionally escape the double quote, but HELP
   text is not quoted). *)
let help_str family =
  let text =
    match Metrics.help family with
    | Some h -> h
    | None -> "Metric " ^ family ^ "."
  in
  let buf = Buffer.create (String.length text) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    text;
  Buffer.contents buf

(* Emit the [# HELP]/[# TYPE] comment pair once per family, in
   first-seen order — a family's samples always follow its header, which
   is what promtool-style parsers require. *)
let type_line buf seen family kind =
  if not (Hashtbl.mem seen family) then begin
    Hashtbl.add seen family ();
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" family (help_str family));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind)
  end

let prometheus (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let seen = Hashtbl.create 16 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (name, v) ->
      type_line buf seen (fst (split_labels name)) "counter";
      addf "%s %d\n" name v)
    s.counters;
  List.iter
    (fun (name, v) ->
      type_line buf seen (fst (split_labels name)) "gauge";
      addf "%s %s\n" name (float_str v))
    s.gauges;
  List.iter
    (fun (name, (h : Metrics.hist_stats)) ->
      let base, labels = split_labels name in
      type_line buf seen base "histogram";
      let cum = ref 0 in
      List.iter
        (fun (bound, n) ->
          cum := !cum + n;
          addf "%s %d\n"
            (sample base ~suffix:"_bucket" ~labels
               ~extra:(Some (Printf.sprintf "le=%S" (le_str bound))))
            !cum)
        h.buckets;
      addf "%s %d\n"
        (sample base ~suffix:"_bucket" ~labels ~extra:(Some "le=\"+Inf\""))
        h.count;
      addf "%s %s\n" (sample base ~suffix:"_sum" ~labels ~extra:None)
        (float_str h.sum);
      addf "%s %d\n" (sample base ~suffix:"_count" ~labels ~extra:None) h.count)
    s.histograms;
  Buffer.contents buf

let line (s : Metrics.snapshot) =
  let parts = ref [] in
  List.iter
    (fun (name, (h : Metrics.hist_stats)) ->
      if h.count > 0 then
        parts :=
          Printf.sprintf "%s.p99=%s" name (float_str (Metrics.quantile h 0.99))
          :: Printf.sprintf "%s.p50=%s" name (float_str (Metrics.quantile h 0.5))
          :: Printf.sprintf "%s.count=%d" name h.count
          :: !parts)
    (List.rev s.histograms);
  List.iter
    (fun (name, v) ->
      parts := Printf.sprintf "%s=%s" name (float_str v) :: !parts)
    (List.rev s.gauges);
  List.iter
    (fun (name, v) ->
      if v > 0 then parts := Printf.sprintf "%s=%d" name v :: !parts)
    (List.rev s.counters);
  String.concat " " !parts
