The compiled fast path must be invisible on the wire: `pet serve`
(compiled on by default — per-valuation answer tables plus the
zero-allocation request scanner) and `pet serve --no-compiled` (the
plain engine path) must produce byte-identical transcripts. The
workload is the paper's Figure 3 H-cov workflow: publish, three
concurrent sessions — s2 replays Bob's valuation so the second report
is served from the compiled answer table — then choices, submissions,
the audit and the stats snapshot.

  $ cat > requests <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"source":"hcov"}}
  > {"pet":1,"id":2,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":3,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":4,"method":"new_session","params":{"source":"hcov"}}
  > {"pet":1,"id":5,"method":"get_report","params":{"session":"s1","valuation":"000011100000"}}
  > {"pet":1,"id":6,"method":"get_report","params":{"session":"s2","valuation":"000011100000"}}
  > {"pet":1,"id":7,"method":"get_report","params":{"session":"s0","valuation":"000011100111"}}
  > {"pet":1,"id":8,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":9,"method":"choose_option","params":{"session":"s1","option":0}}
  > {"pet":1,"id":10,"method":"submit_form","params":{"session":"s1"}}
  > {"pet":1,"id":11,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":12,"method":"audit","params":{"source":"hcov"}}
  > {"pet":1,"id":13,"method":"stats"}
  > REQUESTS

  $ ../../bin/pet.exe serve --deterministic < requests > with_compiled
  $ ../../bin/pet.exe serve --deterministic --no-compiled < requests > without_compiled

Byte-identical, one response line per request:

  $ cmp with_compiled without_compiled
  $ grep -c '^' with_compiled
  13

The table-served report for s2 equals the computed one for s1 except
for the envelope (id, trace, and nothing else):

  $ sed -n 5p with_compiled | sed 's/"id":5/"id":6/;s/"trace":"t4"/"trace":"t5"/' > expected_s2
  $ sed -n 6p with_compiled | cmp expected_s2 -

The rest of the workflow completes as in cli.t — choices erase the raw
valuations, submissions land in the archive:

  $ sed -n '8,11p' with_compiled
  {"pet":1,"id":8,"trace":"t7","ok":{"mas":"0__________1","benefits":["b1"]}}
  {"pet":1,"id":9,"trace":"t8","ok":{"mas":"0_0_1110____","benefits":["b1"]}}
  {"pet":1,"id":10,"trace":"t9","ok":{"grant":0,"form":"0_0_1110____","benefits":["b1"]}}
  {"pet":1,"id":11,"trace":"t10","ok":{"grant":1,"form":"0__________1","benefits":["b1"]}}

Malformed, oversized and wrong-shape lines take the slow decode path
under --compiled and still answer identically to --no-compiled:

  $ cat > junk <<'REQUESTS'
  > {"pet":1,"id":1
  > {"pet":1,"id":1.5,"method":"stats"}
  > {"pet":1,"id":2,"id":2,"method":"stats"}
  > {"pet":1,"id":3,"method":"submit_form","params":{"session":"s9","extra":0}}
  > REQUESTS

  $ ../../bin/pet.exe serve --deterministic < junk > junk_compiled
  $ ../../bin/pet.exe serve --deterministic --no-compiled < junk > junk_engine
  $ cmp junk_compiled junk_engine
  $ cat junk_compiled
  {"pet":1,"id":null,"trace":"t0","error":{"code":"parse_error","message":"line 1, column 16 (offset 15): expected ',' or '}' in object"}}
  {"pet":1,"id":null,"trace":"t1","ok":{"requests":{"total":2,"by_method":{"invalid":{"count":1,"errors":1,"latency_s":{"total":1,"max":1}}}},"registry":{"size":0,"capacity":16,"hits":0,"misses":0,"evictions":0},"sessions":{"active":0,"created":0,"expired":0,"submitted":0},"ledger":{"rule_sets":0,"records":0,"stored_values":0}}}
  {"pet":1,"id":2,"trace":"t2","ok":{"requests":{"total":3,"by_method":{"invalid":{"count":1,"errors":1,"latency_s":{"total":1,"max":1}},"stats":{"count":1,"errors":0,"latency_s":{"total":1,"max":1}}}},"registry":{"size":0,"capacity":16,"hits":0,"misses":0,"evictions":0},"sessions":{"active":0,"created":0,"expired":0,"submitted":0},"ledger":{"rule_sets":0,"records":0,"stored_values":0}}}
  {"pet":1,"id":3,"trace":"t3","error":{"code":"unknown_session","message":"unknown session \"s9\""}}
