lib/sat/solver.ml: Array Float List Lit Printf Stdlib Vec
