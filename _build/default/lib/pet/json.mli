(** Minimal JSON emission (no parsing) for the machine-readable consent
    reports. Only what the PET needs; strings are escaped per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : t Fmt.t
