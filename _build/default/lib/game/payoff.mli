(** Privacy payoff functions (Section 4.2).

    - [Blank] is [PO_blank] (Definition 4.3): the number of blank
      predicates of the published MAS that an attacker knowing the game
      and everyone's strategy cannot deduce — i.e. the blanks on which at
      least two players of the same move disagree (Proposition 4.4).
    - [Sm] is [PO_SM] (Definition 4.5): the number of {e other} players
      making the same move ([k - 1] for a crowd of [k]) — hiding in a
      crowd, akin to k-anonymity.
    - [Weighted] is the weighted extension of [PO_blank] sketched in
      Section 4.2: blanks count with per-predicate sensitivity weights.

    Payoffs are evaluated against a {e crowd}: the set of players assumed
    to play the move. During Algorithm 2 the crowd grows as players
    commit; on a final profile it is the move's actual crowd. *)

type kind = Blank | Sm | Weighted of (string -> float)

val undeducible_blanks :
  Pet_minimize.Atlas.t -> mas:int -> crowd:int list -> string list
(** Blank predicates of the MAS on which the crowd disagrees, in universe
    order. Empty for an empty or singleton crowd. *)

val deduced_blanks :
  Pet_minimize.Atlas.t -> mas:int -> crowd:int list -> (string * bool) list
(** Blank predicates whose value every crowd member shares — what the
    attacker deduces in addition to the published literals. Empty crowd:
    no deductions are defined (the move is never played). *)

val value :
  Pet_minimize.Atlas.t -> kind -> mas:int -> crowd:int list -> float
(** The payoff a crowd member gets. [Blank] and [Sm] values are integral
    (as floats for a uniform interface). *)

val of_profile : Profile.t -> kind -> player:int -> float
(** The payoff player [player] receives under the profile: their move
    evaluated against its actual crowd. *)

val pp_kind : kind Fmt.t
