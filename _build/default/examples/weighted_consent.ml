(* The weighted extension of PO_blank (Section 4.2): "in some cases, the
   sensitivity of all attributes is not the same". Here Alice considers
   her marital situation (p12, "separated") highly sensitive; with
   per-predicate weights the PET's recommendation flips from the move
   that publishes p12 to a student-path move that keeps it deniable.

   Run with: dune exec examples/weighted_consent.exe *)

module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Atlas = Pet_minimize.Atlas
module A1 = Pet_minimize.Algorithm1
module Engine = Pet_rules.Engine
module Profile = Pet_game.Profile
module Payoff = Pet_game.Payoff
module Strategy = Pet_game.Strategy
module Equilibrium = Pet_game.Equilibrium
module Hcov = Pet_casestudies.Hcov

let () =
  let atlas = Atlas.build (Engine.create ~backend:Engine.Bdd (Hcov.exposure ())) in
  let alice = Hcov.alice () in
  let describe payoff name =
    let profile = Strategy.compute ~payoff atlas in
    let profile, _ = Equilibrium.refine profile payoff in
    let played = Profile.move_of_valuation profile alice in
    Fmt.pr "--- %s ---@." name;
    Fmt.pr "Alice is recommended %s@." (Partial.to_string played.A1.mas);
    let player =
      match Atlas.find_player atlas alice with Some i -> i | None -> assert false
    in
    List.iter
      (fun m ->
        let crowd = Profile.crowd profile m in
        let crowd =
          if m = Profile.move_of profile player then crowd else player :: crowd
        in
        Fmt.pr "  option %s: payoff %.1f (hides: %a)@."
          (Partial.to_string (Atlas.mas atlas m).A1.mas)
          (Payoff.value atlas payoff ~mas:m ~crowd)
          Fmt.(list ~sep:(any ", ") string)
          (Payoff.undeducible_blanks atlas ~mas:m ~crowd))
      (Atlas.choices_of_player atlas player);
    Fmt.pr "@."
  in
  (* Uniform sensitivity: hiding ten predicates beats everything, even
     though it means publishing "separated". *)
  describe Payoff.Blank "uniform sensitivity (PO_blank)";
  (* Alice weights her marital situation five times higher than the
     rest: keeping p12 deniable now outweighs the extra published
     predicates, and the student-path move wins. *)
  let weight name = if name = "p12" then 5.0 else 1.0 in
  describe (Payoff.Weighted weight) "p12 weighted 5x (weighted PO_blank)"
