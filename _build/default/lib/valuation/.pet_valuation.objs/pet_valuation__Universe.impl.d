lib/valuation/universe.ml: Array Fmt Hashtbl List String
