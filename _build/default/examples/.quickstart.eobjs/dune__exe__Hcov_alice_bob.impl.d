examples/hcov_alice_bob.ml: Fmt List Pet_casestudies Pet_pet Pet_valuation
