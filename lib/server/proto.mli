(** The collection-service wire protocol: versioned request/response
    envelopes over line-delimited JSON.

    One request per line, one response line per request, always in
    order — the framing works identically over stdin/stdout (the [pet
    serve] subcommand, cram-testable) and over any socket transport
    wrapped around {!Service.handle_line} later.

    Requests: [{"pet":1, "id":ID, "method":M, "params":{…}}] where [ID]
    is an integer, string or null echo token. Responses:
    [{"pet":1,"id":ID,"ok":RESULT}] or
    [{"pet":1,"id":ID,"error":{"code":C,"message":S}}].

    Methods and their parameters:
    - [publish_rules] — [rules] (spec text) or [source] (built-in name);
      optional [tenant] (create that tenant at version 1, building in
      the background) and [quota] (per-tenant active-session cap)
    - [update_rules] — [tenant] plus [rules] or [source]: append a new
      version to an existing tenant; the previous version keeps serving
      until the new build lands, then the registry atomically swaps
    - [new_session] — [rules], [source], [digest] (a published rule
      set) or [tenant] (that tenant's active version)
    - [get_report] — [session], [valuation] (the filled form as bits)
    - [choose_option] — [session], and [option] (index) or [mas] (string)
    - [submit_form] — [session]
    - [revoke] — [session]: withdraw consent; the archived minimized
      form (if any) is tombstoned and the session purged
    - [expire] — [session], [after] (seconds, >= 0): arm or move the
      session's expiry horizon; the grant is tombstoned when it passes
    - [audit] — [rules], [source], [digest] or [tenant]
    - [tenant] — optional [name] (omit for the tenant listing) and
      [wait] (block until the named tenant's builds settle)
    - [stats] — no parameters
    - [metrics] — optional [format]: ["json"] (default) or
      ["prometheus"]
    - [trace] — optional [which]: ["last"] (default), ["slow"], or
      ["get"] with [id]; optional [format]: ["tree"] (default) or
      ["chrome"]

    Any request may carry an optional ["trace":ID] string field; the
    service echoes it on the matching response (ok {e and} error) and
    labels the request's capture with it. Absent the field the service
    generates an id, so responses always carry one when tracing is on.
    Requests without the field are unchanged on the wire — the field is
    additive and version-compatible. *)

module Json = Pet_pet.Json

val version : int

type rules_ref =
  | Text of string  (** the rule-spec text itself *)
  | Source of string  (** a name the host resolves (built-in case studies) *)
  | Digest of string  (** a previously published rule set *)
  | Tenant of string
      (** the named tenant's active version; resolution may block while
          the tenant's first build completes *)

type choice_ref = Index of int | Mas of string

type metrics_format = Mjson | Mprometheus
(** Response shape for the [metrics] method: a structured JSON snapshot
    or a Prometheus text exposition (shipped as one JSON string). *)

type trace_query =
  | Tlast  (** the most recently completed capture *)
  | Tslow  (** summaries of the slow ring, plus eviction counters *)
  | Tget of string  (** a capture by trace id *)

type trace_format = Ttree | Tchrome
(** Rendering of a returned capture: readable tree, or Chrome
    [trace_event] JSON shipped as one string (like the Prometheus
    exposition). *)

type request =
  | Publish_rules of {
      rules : rules_ref;
      tenant : string option;
          (** create this tenant at version 1; its build runs on the
              background builder domain, so the response reports
              ["building"] *)
      quota : int option;
          (** per-tenant cap on concurrently active sessions (0 =
              unlimited); requires [tenant] *)
    }
  | Update_rules of { tenant : string; rules : rules_ref; quota : int option }
  | New_session of rules_ref
  | Get_report of { session : string; valuation : string }
  | Choose_option of { session : string; choice : choice_ref }
  | Submit_form of { session : string }
  | Revoke of { session : string }
      (** withdraw consent: tombstone the archived minimized form *)
  | Expire of { session : string; after : float }
      (** arm (or move) an expiry horizon [after] seconds from now *)
  | Audit of rules_ref
  | Tenant_info of { name : string option; wait : bool }
  | Stats
  | Metrics of metrics_format
  | Trace_req of { query : trace_query; format : trace_format }
  | Watch of { interval : float; frames : int }
      (** live metric-snapshot streaming: the transport replies with
          one ok-response per frame, every [interval] seconds, [frames]
          times ([0] = until the client goes away), all echoing the
          request id. The service itself answers a single frame —
          streaming is the transport loop's job, so non-watch traffic
          is byte-identical with or without a watcher. *)

type code =
  | Parse_error  (** the line is not valid JSON (message has the position) *)
  | Invalid_request  (** not a protocol envelope *)
  | Unknown_method
  | Invalid_params
  | Unknown_rules
      (** digest not in the registry (never published or evicted); the
          message names the offending digest *)
  | Unknown_source  (** no built-in rule set of that name *)
  | Unknown_session
  | Unknown_tenant  (** no tenant of that name was ever published *)
  | Session_expired
  | Bad_state  (** the session is not in a state accepting this method *)
  | Ineligible  (** the form grants no benefit or contradicts the rules *)
  | Rejected  (** provider-side refusal of a submitted form *)
  | Quota_exceeded
      (** the tenant is at its cap of concurrently active sessions *)
  | Build_failed
      (** the tenant version's background build failed (e.g. the form
          is beyond the atlas enumeration bound); the message carries
          the builder's error *)
  | Internal
      (** server-side failure outside the request's control — e.g. the
          write-ahead log refused the event the request produced; the
          state change was not acknowledged as durable *)

val code_name : code -> string

type error = { code : code; message : string }

val error : code -> string -> error
val errorf : code -> ('a, unit, string, error) format4 -> 'a

type envelope = {
  id : Json.t;  (** Int, String or Null *)
  trace : string option;  (** client-supplied trace id, echoed back *)
  request : request;
}

val method_name : request -> string
(** The wire name, used as the stats bucket. *)

val max_line_bytes : int
(** Request lines longer than this (1 MiB) are rejected with
    [Invalid_request] before being parsed — a hostile client cannot make
    the service buffer unbounded JSON. *)

val decode : string -> (envelope, Json.t * string option * error) result
(** Decode one request line. On failure the best-effort request id and
    trace id are returned alongside the error so the response can still
    be correlated. Lines over {!max_line_bytes} are refused without
    parsing. *)

val decode_fast : string -> envelope option
(** One-pass scan of the common envelope shape over {!Json.Cursor},
    building no AST. Sound but partial: [decode_fast line = Some env]
    implies [decode line = Ok env]; [None] means the line needs the
    full decoder (escaped strings, floats, duplicate keys, a cold
    method, or any malformed input — the fast path never produces an
    error itself). Covers [new_session] (including by [tenant]),
    [get_report], [choose_option] and [submit_form]; the protocol
    fuzzer checks the implication on every line it generates. *)

val ok_response : id:Json.t -> ?trace:string -> Json.t -> string

(** [ok_response_text ~id ?trace payload] is [ok_response ~id ?trace]
    for a result that is already rendered JSON text (as produced by
    [Json.to_string]): it emits the identical bytes without re-walking
    the result tree. *)
val ok_response_text : id:Json.t -> ?trace:string -> string -> string
val error_response : id:Json.t -> ?trace:string -> error -> string
(** Responses carry a ["trace":ID] field exactly when [?trace] is given;
    without it the encoding is byte-identical to the pre-trace protocol. *)
