(** State one collection process shares across its worker domains.

    A sharded deployment ({!Pet_net}) runs one {!Service.t} per domain,
    and almost everything a service touches — sessions, compiled
    engines, per-method stats — stays domain-private. Two things cannot:

    - the canonical rule texts, keyed by digest, so a session created on
      one shard can be served by any shard (which recompiles the text
      into its own engine cache — compiled engines are {e not} shared,
      because the BDD backend mutates its memo tables on every query);
    - the grant ledgers, because grant ids are sequential per rule set
      across the whole process and the audit must see every grant;
    - the consent-lifecycle store ({!Consent}), because a revocation must
      reach the grant whichever shard recorded it.

    All three live here behind one mutex (the consent store carries its
    own). The critical sections are short
    (a hash-table probe; recording or auditing one ledger) and — by
    design of the protocol — never contain a raw valuation: what crosses
    a domain boundary is rule text, minimized forms and grant metadata,
    never the respondent's full form. *)

type t

val create : unit -> t

val remember_text : t -> digest:string -> text:string -> bool
(** Record the canonical text for a digest. Returns [true] when the
    digest was new — exactly one shard wins the right (and duty) to
    persist the [Rules] event. *)

val find_text : t -> string -> string option

val texts : t -> (string * string) list
(** Snapshot of (digest, canonical text), unordered. *)

val with_ledger : t -> string -> (Pet_pet.Ledger.t -> 'a) -> 'a
(** Run [f] on the (lazily created) ledger for a digest, holding the
    lock for the whole call — ledger reads and writes are only ever
    performed inside. *)

val ledger_count : t -> int

val fold_ledgers : t -> (string -> Pet_pet.Ledger.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over every ledger under the lock (stats, snapshots). *)

val consents : t -> Consent.t
(** The process-wide consent-lifecycle store. *)
