lib/game/profile.ml: Array List Pet_minimize Printf
