(** Nash-equilibrium verification (Definition 4.2) by exhaustive search
    over unilateral deviations. *)

type deviation = {
  player : int;
  from_mas : int;
  to_mas : int;
  current : float;
  deviated : float;
}

val find_improvement : Profile.t -> Payoff.kind -> deviation option
(** The first strictly profitable unilateral deviation, if any. Crowds
    are adjusted for the deviation: the player leaves their current
    crowd and joins the target one. *)

val is_nash : Profile.t -> Payoff.kind -> bool

val deviations : Profile.t -> Payoff.kind -> deviation list
(** Every strictly profitable unilateral deviation, by player then target
    move — the full regret list the correctness harness prints when a
    profile that should be Nash is not. Empty iff {!is_nash}. *)

val refine : ?max_steps:int -> Profile.t -> Payoff.kind -> Profile.t * bool
(** Best-response dynamics: repeatedly apply a profitable unilateral
    deviation until none remains ([true]) or [max_steps] (default
    [20 * players]) is exhausted ([false]).

    Algorithm 2 commits players against the crowds committed {e so far},
    so on adversarial instances a player can end up regretting an early
    commitment once later players pile onto another move — Theorem 4.6's
    proof sketch does not cover this coupling, and the paper's own case
    studies never trigger it (their Algorithm 2 profiles are Nash as-is;
    the tests pin this). [refine] repairs such profiles. Under [PO_SM]
    the game is a congestion game with increasing payoffs, so the
    dynamics always terminate; under [PO_blank] termination is enforced
    by the budget. See EXPERIMENTS.md. *)

val pp_deviation : deviation Fmt.t
