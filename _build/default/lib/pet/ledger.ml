module Partial = Pet_valuation.Partial

type entry = { id : int; grant : Workflow.grant }

type t = { mutable entries : entry list (* newest first *); mutable next : int }

let create () = { entries = []; next = 0 }

let record t grant =
  let id = t.next in
  t.next <- id + 1;
  t.entries <- { id; grant } :: t.entries;
  id

let entries t = List.rev t.entries

let find t id =
  List.find_map
    (fun e -> if e.id = id then Some e.grant else None)
    t.entries

let size t = t.next

let stored_values t =
  List.fold_left
    (fun acc e -> acc + Partial.domain_size e.grant.Workflow.form)
    0 t.entries

let audit t provider =
  List.filter_map
    (fun e -> if Workflow.audit provider e.grant then None else Some e.id)
    t.entries
  |> List.sort Int.compare

let to_json t =
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           [
             ("id", Json.Int e.id);
             ("form", Json.String (Partial.to_string e.grant.Workflow.form));
             ( "benefits",
               Json.List
                 (List.map
                    (fun b -> Json.String b)
                    e.grant.Workflow.benefits) );
           ])
       (entries t))
