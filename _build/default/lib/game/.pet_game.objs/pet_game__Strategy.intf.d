lib/game/strategy.mli: Payoff Pet_minimize Profile
