let on = ref false

let enabled () = !on
let enable () = on := true
let disable () = on := false

let clock = ref Unix.gettimeofday
let set_clock f = clock := f
let now () = !clock ()

(* Prometheus label-value escaping: exactly backslash, double-quote and
   newline (the exposition format's own list — OCaml's %S would emit
   \ddd decimal escapes a scraper rejects). Plain identifiers render
   unchanged, so existing keys keep their bytes. *)
let escape_label v =
  let plain =
    let rec go i =
      i >= String.length v
      || (match v.[i] with '\\' | '"' | '\n' -> false | _ -> go (i + 1))
    in
    go 0
  in
  if plain then v
  else begin
    let buf = Buffer.create (String.length v + 2) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf
  end

(* Rendered identity: name{k="v",...} with labels in the given order.
   Call sites pass stable label lists, so no sorting is needed for
   idempotence — the same call site always renders the same key. *)
let render name labels =
  match labels with
  | [] -> name
  | _ ->
    let fields =
      List.map
        (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v))
        labels
    in
    Printf.sprintf "%s{%s}" name (String.concat "," fields)

(* --- Buckets -------------------------------------------------------------- *)

let n_buckets = 40

let bucket_bounds =
  Array.init n_buckets (fun i ->
      if i = n_buckets - 1 then infinity
      else 1e-6 *. float_of_int (1 lsl i))

let bucket_of v =
  let v = if v < 0. then 0. else v in
  let rec go i =
    if i >= n_buckets - 1 || v <= bucket_bounds.(i) then i else go (i + 1)
  in
  go 0

(* --- Instruments ----------------------------------------------------------- *)

(* Domain safety: counters are atomic, histograms take a per-instrument
   mutex, and the registry itself is guarded for concurrent register /
   snapshot / reset. Gauges stay plain mutable floats — a float store is
   a single word in the OCaml memory model, so concurrent writers can
   only race to last-writer-wins, never tear. *)

type counter = { c : int Atomic.t }
type gauge = { mutable g : float }

type histogram = {
  hm : Mutex.t;
  counts : int array;
  mutable n : int;
  mutable sum : float;
  mutable hmax : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_m = Mutex.create ()

(* Help strings are keyed by metric family (the name without labels),
   first writer wins — labeled variants of one family share one line of
   exposition, matching Prometheus' one-HELP-per-family rule. *)
let help_table : (string, string) Hashtbl.t = Hashtbl.create 64

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let set_help name text =
  locked registry_m @@ fun () ->
  if not (Hashtbl.mem help_table name) then Hashtbl.add help_table name text

let help name = locked registry_m @@ fun () -> Hashtbl.find_opt help_table name

let register key make cast =
  locked registry_m @@ fun () ->
  match Hashtbl.find_opt registry key with
  | Some i -> (
    match cast i with
    | Some v -> v
    | None -> invalid_arg ("Metrics: " ^ key ^ " registered with another type"))
  | None ->
    let v = make () in
    Hashtbl.add registry key
      (match v with
      | `C c -> Counter c
      | `G g -> Gauge g
      | `H h -> Histogram h);
    (match cast (Hashtbl.find registry key) with
    | Some v -> v
    | None -> assert false)

let counter ?(labels = []) ?help name =
  Option.iter (set_help name) help;
  register (render name labels)
    (fun () -> `C { c = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = if !on then Atomic.incr c.c
let add c n = if !on && n > 0 then ignore (Atomic.fetch_and_add c.c n)
let counter_value c = Atomic.get c.c

let gauge ?(labels = []) ?help name =
  Option.iter (set_help name) help;
  register (render name labels)
    (fun () -> `G { g = 0. })
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = if !on then g.g <- v
let gauge_value g = g.g

let histogram ?(labels = []) ?help name =
  Option.iter (set_help name) help;
  register (render name labels)
    (fun () ->
      `H
        {
          hm = Mutex.create ();
          counts = Array.make n_buckets 0;
          n = 0;
          sum = 0.;
          hmax = 0.;
        })
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  if !on then begin
    let v = if v < 0. then 0. else v in
    let b = bucket_of v in
    locked h.hm @@ fun () ->
    h.counts.(b) <- h.counts.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v > h.hmax then h.hmax <- v
  end

let time h f =
  if not !on then f ()
  else begin
    let t0 = now () in
    match f () with
    | r ->
      observe h (now () -. t0);
      r
    | exception e ->
      observe h (now () -. t0);
      raise e
  end

(* --- Snapshots ---------------------------------------------------------------- *)

type hist_stats = {
  count : int;
  sum : float;
  max : float;
  buckets : (float * int) list;
}

let quantile h q =
  if h.count = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let rec go seen = function
      | [] -> h.max
      | (bound, n) :: rest ->
        if seen + n >= rank then Float.min bound h.max else go (seen + n) rest
    in
    go 0 h.buckets
  end

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_stats) list;
}

let hist_stats h =
  locked h.hm @@ fun () ->
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then
      buckets := (bucket_bounds.(i), h.counts.(i)) :: !buckets
  done;
  { count = h.n; sum = h.sum; max = h.hmax; buckets = !buckets }

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  (locked registry_m @@ fun () ->
   Hashtbl.iter
     (fun key instrument ->
       match instrument with
       | Counter c -> counters := (key, Atomic.get c.c) :: !counters
       | Gauge g -> gauges := (key, g.g) :: !gauges
       | Histogram h -> histograms := (key, hist_stats h) :: !histograms)
     registry);
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  locked registry_m @@ fun () ->
  Hashtbl.iter
    (fun _ instrument ->
      match instrument with
      | Counter c -> Atomic.set c.c 0
      | Gauge g -> g.g <- 0.
      | Histogram h ->
        locked h.hm @@ fun () ->
        Array.fill h.counts 0 n_buckets 0;
        h.n <- 0;
        h.sum <- 0.;
        h.hmax <- 0.)
    registry
