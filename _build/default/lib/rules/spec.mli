(** Textual rule files — the artifact a service provider authors once per
    form (Step 1 of the paper's methodology, Section 5).

    Syntax, one declaration per line ([#] starts a comment):

    {v
    form p1 p2 p3
    benefits b1 b2 b3
    rule b1 := p1 | (p2 & p3)
    rule b2 := p1 & !p2
    constraint p1 -> !p2
    v}

    Eligibility formulas may use any CPL connectives; they are converted
    to DNF (Definition 3.9 allows this without loss of generality). *)

val parse : string -> (Exposure.t, string) result
(** Parse the contents of a rule file. Errors carry the 1-based line. *)

val parse_exn : string -> Exposure.t
(** @raise Invalid_argument with the error message. *)

val print : Exposure.t Fmt.t
(** Render an exposure problem back to the rule-file syntax; [parse] of
    the output reconstructs an equivalent problem. *)

val to_string : Exposure.t -> string
