(** Deterministic random exposure-problem generation, for scalability
    sweeps, fuzzing and stress tests. Problems are reproducible from the
    seed. *)

type config = {
  predicates : int;  (** size of the form universe (>= 2) *)
  benefits : int;  (** number of benefits, one rule each (>= 1) *)
  conjunctions : int;  (** conjunctions per rule DNF (>= 1) *)
  width : int;  (** literals per conjunction (>= 1) *)
  implications : int;  (** chainable [R_ADD] implications (>= 0) *)
}

val default : config
(** 8 predicates, 2 benefits, 3 conjunctions of width 3, 2 implications. *)

val exposure : ?config:config -> seed:int -> unit -> Exposure.t
(** Generate a random exposure problem. The constraints are single-literal
    implications over distinct variables, so they are always satisfiable
    and chainable by Algorithm 1. *)
