lib/minimize/algorithm1.mli: Pet_rules Pet_valuation
