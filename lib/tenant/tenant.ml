(* A multi-tenant form registry with versioned publishes and hot rule
   migration, layered over the per-service LRU engine cache.

   Tenants are named forms; each publish or rule update appends a
   *version* (monotonic number + canonical-text digest). Publishing
   returns immediately: the expensive artifact construction (engine,
   MAS atlas, compiled answer table) runs on a single background
   builder domain, and the version is atomically marked [Ready] — and
   made the tenant's active version — only when its build lands.
   Sessions pin the digest they started on, so a hot swap never changes
   the answers of an in-flight respondent; new sessions pick up the new
   active version the instant it is ready.

   The registry is generic in the built artifact type ['a] so it does
   not depend on the server library that instantiates it (the server
   depends on this module, not the reverse). Build work arrives as
   closures; the builder publishes results back under the registry
   mutex, which is also what makes the artifact handoff to a consuming
   shard a properly synchronized transfer.

   Locking: one mutex guards every tenant, version and counter; two
   conditions share it ([work] wakes the builder, [settled] wakes
   waiters blocked on a version build). Builds themselves run outside
   the lock — only the enqueue and the final state swap take it. *)

type build_state = Building | Ready | Failed of string

let state_name = function
  | Building -> "building"
  | Ready -> "ready"
  | Failed _ -> "failed"

type 'a version = {
  number : int;
  digest : string;
  text : string;  (* canonical rule text; survives any engine eviction *)
  published_at : float;
  mutable state : build_state;
  mutable artifact : 'a option;
      (* the built artifact, handed to the first resolver (which
         installs it in its own engine cache); later resolvers — other
         shards — recompile from [text] as usual *)
}

type 'a tenant = {
  name : string;
  mutable versions : 'a version list;  (* newest first, numbers contiguous *)
  mutable active : int;
      (* version number serving *new* sessions; moves only when a build
         completes (atomically, under the mutex), or on restore *)
  mutable quota : int;  (* max concurrently active sessions; 0 = unlimited *)
  mutable sessions_active : int;
  mutable sessions_created : int;
  mutable submitted : int;
}

type 'a job = {
  job_tenant : string;
  job_number : int;
  job_build : unit -> ('a, string) result;
}

type 'a t = {
  mutex : Mutex.t;
  work : Condition.t;
  settled : Condition.t;
  tenants : (string, 'a tenant) Hashtbl.t;
  by_digest : (string, string) Hashtbl.t;  (* digest -> canonical text *)
  jobs : 'a job Queue.t;
  default_quota : int;
  mutable builder : unit Domain.t option;
  mutable stopping : bool;
  mutable builds : int;  (* completed, successfully *)
  mutable failures : int;
  mutable building : int;  (* versions currently in [Building] *)
}

let create ?(quota = 0) () =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    settled = Condition.create ();
    tenants = Hashtbl.create 64;
    by_digest = Hashtbl.create 64;
    jobs = Queue.create ();
    default_quota = quota;
    builder = None;
    stopping = false;
    builds = 0;
    failures = 0;
    building = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- The builder domain ------------------------------------------------------ *)

let find_version tenant number =
  List.find_opt (fun v -> v.number = number) tenant.versions

(* One build: run the closure outside the lock, then publish the result
   and move the tenant's active version forward — the "atomic swap" is
   exactly these few lines under the mutex. *)
let run_job t job =
  let result =
    match job.job_build () with
    | result -> result
    | exception exn -> Error (Printexc.to_string exn)
  in
  locked t (fun () ->
      (match Hashtbl.find_opt t.tenants job.job_tenant with
      | None -> ()  (* tenant vanished; nothing to publish *)
      | Some tenant -> (
        match find_version tenant job.job_number with
        | None -> ()
        | Some version ->
          t.building <- t.building - 1;
          (match result with
          | Ok artifact ->
            version.artifact <- Some artifact;
            version.state <- Ready;
            t.builds <- t.builds + 1;
            if version.number > tenant.active then
              tenant.active <- version.number
          | Error m ->
            version.state <- Failed m;
            t.failures <- t.failures + 1)));
      Condition.broadcast t.settled)

let rec builder_loop t =
  let job =
    locked t (fun () ->
        while Queue.is_empty t.jobs && not t.stopping do
          Condition.wait t.work t.mutex
        done;
        if Queue.is_empty t.jobs then None else Some (Queue.pop t.jobs))
  in
  match job with
  | None -> ()  (* stopping, queue drained *)
  | Some job ->
    run_job t job;
    builder_loop t

(* Called under the mutex. The domain is spawned on first use so a
   registry that never sees a tenant costs nothing. *)
let ensure_builder t =
  match t.builder with
  | Some _ -> ()
  | None -> t.builder <- Some (Domain.spawn (fun () -> builder_loop t))

let enqueue_build t ~name ~number ~build =
  ensure_builder t;
  Queue.add { job_tenant = name; job_number = number; job_build = build } t.jobs;
  t.building <- t.building + 1;
  Condition.signal t.work

let stop t =
  let builder =
    locked t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.work;
        let b = t.builder in
        t.builder <- None;
        b)
  in
  Option.iter Domain.join builder

(* --- Publishing -------------------------------------------------------------- *)

let newest tenant = List.hd tenant.versions

let add_version t tenant ~digest ~text ~now =
  let number = (newest tenant).number + 1 in
  let version =
    {
      number;
      digest;
      text;
      published_at = now;
      state = Building;
      artifact = None;
    }
  in
  tenant.versions <- version :: tenant.versions;
  Hashtbl.replace t.by_digest digest text;
  number

let apply_quota t tenant quota =
  match quota with
  | Some q -> tenant.quota <- max 0 q
  | None -> ignore t

let publish t ~name ~digest ~text ?quota ~now ~build () =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | Some tenant ->
        apply_quota t tenant quota;
        let v = newest tenant in
        if v.digest = digest then `Existing (v.number, v.state)
        else `Conflict v.number
      | None ->
        let version =
          {
            number = 1;
            digest;
            text;
            published_at = now;
            state = Building;
            artifact = None;
          }
        in
        let tenant =
          {
            name;
            versions = [ version ];
            active = 1;
            quota = (match quota with Some q -> max 0 q | None -> t.default_quota);
            sessions_active = 0;
            sessions_created = 0;
            submitted = 0;
          }
        in
        Hashtbl.replace t.tenants name tenant;
        Hashtbl.replace t.by_digest digest text;
        enqueue_build t ~name ~number:1 ~build;
        `Created)

let update t ~name ~digest ~text ?quota ~now ~build () =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> `Unknown
      | Some tenant ->
        apply_quota t tenant quota;
        let v = newest tenant in
        if v.digest = digest then `Unchanged (v.number, v.state)
        else begin
          let number = add_version t tenant ~digest ~text ~now in
          enqueue_build t ~name ~number ~build;
          `Queued number
        end)

(* Recovery: re-register a version recorded in the WAL. The artifact is
   compiled lazily on first resolution (from the retained text), so
   replaying a thousand tenants costs table inserts, not builds. *)
let restore t ~name ~version:number ~digest ~text ?quota ~now () =
  locked t (fun () ->
      Hashtbl.replace t.by_digest digest text;
      let version =
        {
          number;
          digest;
          text;
          published_at = now;
          state = Ready;
          artifact = None;
        }
      in
      match Hashtbl.find_opt t.tenants name with
      | None ->
        Hashtbl.replace t.tenants name
          {
            name;
            versions = [ version ];
            active = number;
            quota =
              (match quota with Some q -> max 0 q | None -> t.default_quota);
            sessions_active = 0;
            sessions_created = 0;
            submitted = 0;
          }
      | Some tenant ->
        apply_quota t tenant quota;
        tenant.versions <-
          version :: List.filter (fun v -> v.number <> number) tenant.versions;
        if number > tenant.active then tenant.active <- number)

(* --- Resolution -------------------------------------------------------------- *)

type 'a resolved = {
  res_version : int;
  res_digest : string;
  res_text : string;
  res_artifact : 'a option;
}

(* The active version for a new session. Blocks while that version is
   still building — only a tenant's *first* version can be active and
   unbuilt (updates leave the previous version active until the swap),
   so this wait is the publish/new_session handshake, not a steady-state
   stall. The artifact is handed over exactly once; the caller installs
   it in its own engine cache. *)
let resolve t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> `Unknown
      | Some tenant ->
        let rec settle () =
          match find_version tenant tenant.active with
          | None -> `Unknown
          | Some version -> (
            match version.state with
            | Building ->
              Condition.wait t.settled t.mutex;
              settle ()
            | Failed m -> `Failed (version.number, m)
            | Ready ->
              let artifact = version.artifact in
              version.artifact <- None;
              `Ready
                {
                  res_version = version.number;
                  res_digest = version.digest;
                  res_text = version.text;
                  res_artifact = artifact;
                })
        in
        settle ())

(* Block until the tenant's newest version has settled (ready or
   failed): the deploy-script barrier behind the wire method
   [tenant {"name":N,"wait":true}]. *)
let await t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> ()
      | Some tenant ->
        let rec wait_settled () =
          match (newest tenant).state with
          | Building ->
            Condition.wait t.settled t.mutex;
            wait_settled ()
          | Ready | Failed _ -> ()
        in
        wait_settled ())

let text_of_digest t digest =
  locked t (fun () -> Hashtbl.find_opt t.by_digest digest)

(* --- Quotas and per-tenant counters ------------------------------------------ *)

let try_admit t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> `Ok  (* unknown tenants fail resolution, not admission *)
      | Some tenant ->
        if tenant.quota > 0 && tenant.sessions_active >= tenant.quota then
          `Over tenant.quota
        else begin
          tenant.sessions_active <- tenant.sessions_active + 1;
          tenant.sessions_created <- tenant.sessions_created + 1;
          `Ok
        end)

(* Replayed sessions bypass the quota: they were admitted when first
   created, and recovery must rebuild that state verbatim. *)
let note_restored t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> ()
      | Some tenant ->
        tenant.sessions_active <- tenant.sessions_active + 1;
        tenant.sessions_created <- tenant.sessions_created + 1)

let release t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> ()
      | Some tenant ->
        if tenant.sessions_active > 0 then
          tenant.sessions_active <- tenant.sessions_active - 1)

let note_submitted t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> ()
      | Some tenant -> tenant.submitted <- tenant.submitted + 1)

(* --- Introspection ------------------------------------------------------------ *)

type info = {
  info_name : string;
  versions : int;
  active : int;
  digest : string;  (* of the active version *)
  state : build_state;  (* of the newest version — "ready" means settled *)
  quota : int;
  sessions_active : int;
  sessions_created : int;
  submitted : int;
}

let info t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | None -> None
      | Some tenant ->
        let active_digest =
          match find_version tenant tenant.active with
          | Some v -> v.digest
          | None -> ""
        in
        Some
          {
            info_name = tenant.name;
            versions = List.length tenant.versions;
            active = tenant.active;
            digest = active_digest;
            state = (newest tenant).state;
            quota = tenant.quota;
            sessions_active = tenant.sessions_active;
            sessions_created = tenant.sessions_created;
            submitted = tenant.submitted;
          })

let count t = locked t (fun () -> Hashtbl.length t.tenants)

let names t =
  locked t (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.tenants []
      |> List.sort String.compare)

let infos t =
  names t |> List.filter_map (fun name -> info t name)

type totals = {
  tenants : int;
  builds : int;
  build_failures : int;
  building : int;
}

let totals t =
  locked t (fun () ->
      {
        tenants = Hashtbl.length t.tenants;
        builds = t.builds;
        build_failures = t.failures;
        building = t.building;
      })

(* Every version of every tenant, tenants sorted by name and versions
   ascending — the snapshot order ([state_events]): replaying the dump
   through {!restore} reproduces the registry (lazily compiled). *)
let dump t =
  locked t (fun () ->
      Hashtbl.fold (fun name tenant acc -> (name, tenant) :: acc) t.tenants []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.map (fun (name, (tenant : _ tenant)) ->
             ( name,
               tenant.quota,
               List.rev_map
                 (fun v -> (v.number, v.digest, v.text, v.published_at))
                 tenant.versions )))
