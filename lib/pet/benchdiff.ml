type direction = Higher_better | Lower_better | Info

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let ends_with s suffix =
  let ns = String.length s and nx = String.length suffix in
  ns >= nx && String.sub s (ns - nx) nx = suffix

(* SLO burn/breach keys are tested before the throughput patterns
   ("error_burn_rate" contains "rate" but burning faster is worse),
   and throughput before durations: "requests_per_s" ends in "_s" but
   is a rate, not a duration. *)
let direction_of_key key =
  let k = String.lowercase_ascii key in
  if contains k "burn" || contains k "breach" then Lower_better
  else if contains k "per_s" || contains k "rate" then Higher_better
  else if
    ends_with k "_s" || ends_with k "_ms" || contains k "seconds"
    || contains k "overhead" || contains k "latency" || contains k "errors"
  then Lower_better
  else Info

type finding = {
  path : string;
  old_value : float;
  new_value : float;
  change : float;
  direction : direction;
  regression : bool;
}

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | Json.Null | Json.Bool _ | Json.String _ | Json.List _ | Json.Obj _ -> None

let diff ?(threshold = 0.25) old_json new_json =
  let findings = ref [] in
  let leaf path key old_value new_value =
    let change =
      if old_value = new_value then 0.
      else if old_value = 0. then infinity
      else (new_value -. old_value) /. old_value
    in
    let direction = direction_of_key key in
    let regression =
      match direction with
      | Higher_better -> change < -.threshold
      | Lower_better -> change > threshold
      | Info -> false
    in
    findings :=
      { path; old_value; new_value; change; direction; regression }
      :: !findings
  in
  let rec walk path key o n =
    match (o, n) with
    | Json.Obj olds, Json.Obj news ->
      List.iter
        (fun (k, ov) ->
          match List.assoc_opt k news with
          | Some nv -> walk (path ^ "." ^ k) k ov nv
          | None -> ())
        olds
    | Json.List olds, Json.List news ->
      List.iteri
        (fun i ov ->
          match List.nth_opt news i with
          | Some nv -> walk (Printf.sprintf "%s[%d]" path i) key ov nv
          | None -> ())
        olds
    | o, n -> (
      match (number o, number n) with
      | Some ov, Some nv -> leaf path key ov nv
      | _ -> ())
  in
  (match (old_json, new_json) with
  | Json.Obj _, Json.Obj _ | Json.List _, Json.List _ ->
    walk "" "" old_json new_json
  | o, n -> walk "value" "value" o n);
  List.rev !findings

let has_regression = List.exists (fun f -> f.regression)

let render findings =
  let buf = Buffer.create 256 in
  let directional =
    List.filter (fun f -> f.direction <> Info) findings
  in
  let pct f =
    if f.change = infinity then "+inf%"
    else Printf.sprintf "%+.1f%%" (100. *. f.change)
  in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%-12s %-48s %14.6g -> %14.6g  %s\n"
           (if f.regression then "REGRESSION" else "ok")
           f.path f.old_value f.new_value (pct f)))
    directional;
  let info = List.length findings - List.length directional in
  if info > 0 then
    Buffer.add_string buf
      (Printf.sprintf "(%d informational value(s) compared)\n" info);
  let regressions = List.filter (fun f -> f.regression) directional in
  Buffer.add_string buf
    (match regressions with
    | [] ->
      Printf.sprintf "no regressions across %d directional value(s)\n"
        (List.length directional)
    | rs ->
      Printf.sprintf "%d regression(s) across %d directional value(s)\n"
        (List.length rs) (List.length directional));
  Buffer.contents buf
