module Json = Pet_pet.Json

type event =
  | Rules of { digest : string; text : string }
  | Tenant_published of {
      tenant : string;
      version : int;
      digest : string;
      text : string;
      quota : int option;
      at : float;
    }
      (* logged on the request path at publish/update time — before the
         background build runs — so "the latest durable version" is the
         latest *accepted* version, and recovery re-registers it with a
         lazy rebuild *)
  | Session_created of {
      id : string;
      digest : string;
      tenant : string option;
      at : float;
    }
  | Session_chosen of {
      id : string;
      mas : string;
      benefits : string list;
      at : float;
    }
  | Session_submitted of { id : string; grant_id : int; at : float }
  | Session_revoked of { id : string; at : float }
      (* the respondent withdrew consent: the session (if live) was
         purged and its archived grant (if any) tombstoned — from here
         on, no later record may re-establish this session's
         subvaluation *)
  | Session_expiry of { id : string; horizon : float; at : float }
      (* consent was granted until [horizon] (absolute service time,
         set at [at]): once the clock passes it the grant is tombstoned
         by the sweep; replay re-arms the horizon so recovery applies
         it too *)
  | Grant of {
      digest : string;
      grant_id : int;
      form : string;
      benefits : string list;
      session : string option;
          (* the submitting session — the consent-lifecycle link a
             revocation uses to find this record; omitted from the JSON
             when absent so pre-lifecycle logs keep their bytes *)
      tenant : string option;
          (* namespaces the grant ledger per tenant: two tenants
             publishing identical rules keep separate archives *)
      revoked : bool;
          (* a tombstone written by compaction: the form field is empty
             and must never be parsed — only the id slot survives *)
    }

let kind = function
  | Rules _ -> "rules"
  | Tenant_published _ -> "tenant_published"
  | Session_created _ -> "session_created"
  | Session_chosen _ -> "session_chosen"
  | Session_submitted _ -> "session_submitted"
  | Session_revoked _ -> "session_revoked"
  | Session_expiry _ -> "session_expiry"
  | Grant _ -> "grant"

let benefits_json benefits = Json.List (List.map (fun b -> Json.String b) benefits)

let to_json event =
  let tag = ("ev", Json.String (kind event)) in
  match event with
  | Rules { digest; text } ->
    Json.Obj [ tag; ("digest", Json.String digest); ("text", Json.String text) ]
  | Tenant_published { tenant; version; digest; text; quota; at } ->
    Json.Obj
      ([
         tag;
         ("tenant", Json.String tenant);
         ("version", Json.Int version);
         ("digest", Json.String digest);
         ("text", Json.String text);
       ]
      @ (match quota with
        | Some q -> [ ("quota", Json.Int q) ]
        | None -> [])
      @ [ ("at", Json.Float at) ])
  | Session_created { id; digest; tenant; at } ->
    (* The tenant field is emitted only when present, so single-tenant
       logs keep their pre-tenancy bytes. *)
    Json.Obj
      ([ tag; ("id", Json.String id); ("digest", Json.String digest) ]
      @ (match tenant with
        | Some name -> [ ("tenant", Json.String name) ]
        | None -> [])
      @ [ ("at", Json.Float at) ])
  | Session_chosen { id; mas; benefits; at } ->
    Json.Obj
      [
        tag;
        ("id", Json.String id);
        ("mas", Json.String mas);
        ("benefits", benefits_json benefits);
        ("at", Json.Float at);
      ]
  | Session_submitted { id; grant_id; at } ->
    Json.Obj
      [
        tag;
        ("id", Json.String id);
        ("grant", Json.Int grant_id);
        ("at", Json.Float at);
      ]
  | Session_revoked { id; at } ->
    Json.Obj [ tag; ("id", Json.String id); ("at", Json.Float at) ]
  | Session_expiry { id; horizon; at } ->
    Json.Obj
      [
        tag;
        ("id", Json.String id);
        ("horizon", Json.Float horizon);
        ("at", Json.Float at);
      ]
  | Grant { digest; grant_id; form; benefits; session; tenant; revoked } ->
    (* The lifecycle fields are emitted only when set, so pre-lifecycle
       logs keep their bytes. *)
    Json.Obj
      ([
         tag;
         ("digest", Json.String digest);
         ("grant", Json.Int grant_id);
         ("form", Json.String form);
         ("benefits", benefits_json benefits);
       ]
      @ (match session with
        | Some id -> [ ("session", Json.String id) ]
        | None -> [])
      @ (match tenant with
        | Some name -> [ ("tenant", Json.String name) ]
        | None -> [])
      @ if revoked then [ ("revoked", Json.Bool true) ] else [])

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let string_field name j =
  let* v = field name j in
  match Json.string_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let int_field name j =
  let* v = field name j in
  match Json.int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S is not an integer" name)

(* Integral floats are emitted as JSON integers, so accept both. *)
let float_field name j =
  let* v = field name j in
  match v with
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error (Printf.sprintf "field %S is not a number" name)

let benefits_field j =
  let* v = field "benefits" j in
  match v with
  | Json.List items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        match Json.string_opt item with
        | Some s -> Ok (s :: acc)
        | None -> Error "field \"benefits\" contains a non-string")
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "field \"benefits\" is not a list"

let of_json j =
  let* tag = string_field "ev" j in
  match tag with
  | "rules" ->
    let* digest = string_field "digest" j in
    let* text = string_field "text" j in
    Ok (Rules { digest; text })
  | "tenant_published" ->
    let* tenant = string_field "tenant" j in
    let* version = int_field "version" j in
    let* digest = string_field "digest" j in
    let* text = string_field "text" j in
    let* quota =
      match Json.member "quota" j with
      | None -> Ok None
      | Some (Json.Int q) -> Ok (Some q)
      | Some _ -> Error "field \"quota\" is not an integer"
    in
    let* at = float_field "at" j in
    Ok (Tenant_published { tenant; version; digest; text; quota; at })
  | "session_created" ->
    let* id = string_field "id" j in
    let* digest = string_field "digest" j in
    let* tenant =
      match Json.member "tenant" j with
      | None -> Ok None
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error "field \"tenant\" is not a string"
    in
    let* at = float_field "at" j in
    Ok (Session_created { id; digest; tenant; at })
  | "session_chosen" ->
    let* id = string_field "id" j in
    let* mas = string_field "mas" j in
    let* benefits = benefits_field j in
    let* at = float_field "at" j in
    Ok (Session_chosen { id; mas; benefits; at })
  | "session_submitted" ->
    let* id = string_field "id" j in
    let* grant_id = int_field "grant" j in
    let* at = float_field "at" j in
    Ok (Session_submitted { id; grant_id; at })
  | "session_revoked" ->
    let* id = string_field "id" j in
    let* at = float_field "at" j in
    Ok (Session_revoked { id; at })
  | "session_expiry" ->
    let* id = string_field "id" j in
    let* horizon = float_field "horizon" j in
    let* at = float_field "at" j in
    Ok (Session_expiry { id; horizon; at })
  | "grant" ->
    let* digest = string_field "digest" j in
    let* grant_id = int_field "grant" j in
    let* form = string_field "form" j in
    let* benefits = benefits_field j in
    let opt_string name =
      match Json.member name j with
      | None -> Ok None
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
    in
    let* session = opt_string "session" in
    let* tenant = opt_string "tenant" in
    let* revoked =
      match Json.member "revoked" j with
      | None -> Ok false
      | Some (Json.Bool b) -> Ok b
      | Some _ -> Error "field \"revoked\" is not a boolean"
    in
    Ok (Grant { digest; grant_id; form; benefits; session; tenant; revoked })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

type sink = { emit : event -> unit }

let null = { emit = (fun _ -> ()) }
