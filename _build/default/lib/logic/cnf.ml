type clause = Literal.t list
type t = clause list

let normalize_clause lits =
  let sorted = List.sort_uniq Literal.compare lits in
  let tautological =
    List.exists (fun l -> List.mem (Literal.negate l) sorted) sorted
  in
  if tautological then None else Some sorted

let remove_subsumed cnf =
  let subsumes c c' = List.for_all (fun l -> List.mem l c') c in
  let keep c =
    not
      (List.exists
         (fun c' -> (not (List.equal Literal.equal c c')) && subsumes c' c)
         cnf)
  in
  List.filter keep (List.sort_uniq Stdlib.compare cnf)

let of_formula f =
  let rec go = function
    | Formula.True -> []
    | Formula.False -> [ [] ]
    | Formula.Var x -> [ [ Literal.pos x ] ]
    | Formula.Not (Formula.Var x) -> [ [ Literal.neg x ] ]
    | Formula.And (a, b) -> go a @ go b
    | Formula.Or (a, b) ->
      let cas = go a and cbs = go b in
      List.concat_map
        (fun ca -> List.filter_map (fun cb -> normalize_clause (ca @ cb)) cbs)
        cas
    | Formula.Not _ | Formula.Implies _ | Formula.Iff _ ->
      assert false (* input is NNF *)
  in
  remove_subsumed (go (Nnf.of_formula f))

let clause_to_formula c = Formula.disj (List.map Literal.to_formula c)
let to_formula cnf = Formula.conj (List.map clause_to_formula cnf)

let holds rho cnf =
  List.for_all (fun c -> List.exists (Literal.holds rho) c) cnf

(* Plaisted–Greenbaum style Tseitin on the NNF: since the input is in NNF,
   only the "definition implies subformula" direction of each definitional
   equivalence is needed for equisatisfiability, but we emit the full
   equivalences so that models project exactly. *)
let tseitin ~fresh_prefix f =
  let counter = ref 0 in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  let fresh () =
    incr counter;
    fresh_prefix ^ string_of_int !counter
  in
  (* [go f] returns a literal equivalent to [f] under the emitted
     definitional clauses. *)
  let rec go = function
    | Formula.True ->
      let x = fresh () in
      emit [ Literal.pos x ];
      Literal.pos x
    | Formula.False ->
      let x = fresh () in
      emit [ Literal.neg x ];
      Literal.pos x
    | Formula.Var x -> Literal.pos x
    | Formula.Not (Formula.Var x) -> Literal.neg x
    | Formula.And (a, b) ->
      let la = go a and lb = go b in
      let x = Literal.pos (fresh ()) in
      (* x <-> la & lb *)
      emit [ Literal.negate x; la ];
      emit [ Literal.negate x; lb ];
      emit [ x; Literal.negate la; Literal.negate lb ];
      x
    | Formula.Or (a, b) ->
      let la = go a and lb = go b in
      let x = Literal.pos (fresh ()) in
      (* x <-> la | lb *)
      emit [ Literal.negate x; la; lb ];
      emit [ x; Literal.negate la ];
      emit [ x; Literal.negate lb ];
      x
    | Formula.Not _ | Formula.Implies _ | Formula.Iff _ ->
      assert false (* input is NNF *)
  in
  match Nnf.of_formula f with
  | Formula.True -> []
  | Formula.False -> [ [] ]
  | nnf ->
    let root = go nnf in
    emit [ root ];
    List.rev !clauses

let pp ppf = function
  | [] -> Fmt.string ppf "true"
  | cnf ->
    let pp_clause ppf = function
      | [] -> Fmt.string ppf "false"
      | c -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " | ") Literal.pp) c
    in
    Fmt.(list ~sep:(any " & ") pp_clause) ppf cnf
