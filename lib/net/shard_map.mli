(** Session-id → shard mapping.

    Deterministic and stable across processes: the same id always lands
    on the same shard, which is what lets recovery rebuild each shard's
    session store before the domains start, and lets every connection
    thread route a request without consulting any shared state. *)

val hash : string -> int
(** FNV-1a (31-bit, non-negative). *)

val owner : shards:int -> string -> int
(** The shard index owning [id] among [shards] shards ([0] when
    [shards <= 1]). *)
