(** The single writer domain: every WAL append in the process funnels
    through here, batched.

    A shard that produced events for a request calls {!submit} and
    blocks until its batch is on disk — durable-before-reply, exactly as
    in the stdio server. While one fsync is in flight every other
    shard's submission queues up, so the writer's next batch carries all
    of them and one fsync commits them together. With N shards blocking
    at ~the same rate the steady-state batch approaches N events per
    fsync: the ~100µs fsync that gates a single synchronous writer is
    amortized N ways, which is where the 1→N throughput scaling of the
    TCP server comes from on any core count.

    Batches inherit {!Pet_store.Store.append_batch}'s crash contract:
    all-or-prefix, in submission order — a reply is only ever sent for a
    request whose events a post-crash recovery will replay. *)

type t

type stats = { batches : int; events : int; max_batch : int }

val start :
  ?batch_target:int ->
  ?gather_s:float ->
  ?flight:Pet_store.Flight_log.t ->
  Pet_store.Store.t ->
  t
(** Spawn the writer domain. The store must not be appended to by
    anyone else from then on (reads and compaction stay with the
    caller; the store is not closed by {!stop}).

    [batch_target] (default 1: commit immediately) is the batch size
    worth briefly waiting for — the number of shards submitting.
    When > 1 the writer, having found work, parks in [select] on a
    self-pipe — yielding the core so other shards can run — and is
    woken by the submission that completes the batch, or by the
    [gather_s] deadline (default 200µs, a safety bound rarely hit;
    keep it under a couple of fsyncs). On a single core this wait is
    what lets the other shards' submissions reach the queue at all.

    [flight] attaches the flight-recorder journal: records handed to
    {!submit_flight} are appended to it by this same writer domain,
    after the WAL batch they queued behind. *)

val submit : t -> Pet_server.Persist.event list -> unit
(** Block until the events are durable (flushed and fsynced, in order,
    possibly sharing the fsync with other submissions). No-op on [[]].
    Raises [Sys_error] if the disk refused the batch or the writer is
    stopped — the caller must not acknowledge the request. *)

val submit_flight : t -> string -> unit
(** Enqueue one rendered flight-recorder record for the writer domain
    to append (flushed, never fsynced — telemetry durability). Never
    blocks on I/O; silently dropped when no [flight] journal is
    attached or the writer is stopping, and a failing telemetry disk is
    swallowed by the writer rather than failing the WAL. *)

val stop : t -> unit
(** Drain both queues (WAL jobs, then pending flight records), commit
    what remains, join the domain. Subsequent {!submit}s raise. *)

val stats : t -> stats
(** Lifetime totals: batches committed, events across them, largest
    batch. Read after {!stop} for exact values (live reads are
    unsynchronized but safe). *)
