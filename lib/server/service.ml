module Json = Pet_pet.Json
module Spec = Pet_rules.Spec
module Exposure = Pet_rules.Exposure
module Engine = Pet_rules.Engine
module Atlas = Pet_minimize.Atlas
module Payoff = Pet_game.Payoff
module Workflow = Pet_pet.Workflow
module Report = Pet_pet.Report
module Ledger = Pet_pet.Ledger
module Total = Pet_valuation.Total
module Partial = Pet_valuation.Partial
module Universe = Pet_valuation.Universe
module Tenant = Pet_tenant.Tenant

(* One memoized [get_report] answer: the rendered response payload plus
   the option list the session must remember for [choose_option]. Both
   are immutable, so entries are shared freely across sessions. *)
type report_answer =
  | Report_payload of {
      payload : string;  (* [Json.to_string (Report.to_json report)] *)
      options : (Partial.t * string list) list;
    }
  | Report_refused of string  (* the [ineligible] message *)

type compiled = {
  digest : string;
  exposure : Exposure.t;
  provider : Workflow.t;
  fast : report_answer option array option;
      (* the compiled fast path's per-valuation answer table, indexed by
         [Total.bits]: allocated at publish time for tabulable forms
         (when the service runs with the compiled path on), filled on
         first computation — cache-hit traffic then answers [get_report]
         with an array read and a few buffer appends *)
}

type method_stats = {
  mutable count : int;
  mutable errors : int;
  mutable total_latency : float;
  mutable max_latency : float;
}

type t = {
  backend : Engine.backend;
  compiled : bool;
      (* the [--compiled] flag: tabulated report answers for small
         forms plus the AST-free request decoder; off, every request
         takes the tree decoder and the full report pipeline *)
  payoff : Payoff.kind;
  now : unit -> float;
  resolve : string -> string option;
  registry : compiled Registry.t;
  ledgers : (string, Ledger.t) Hashtbl.t;
      (* archives outlive engine evictions: the cache bounds compute, not
         the legally retained records *)
  store : Session.store;
  methods : (string, method_stats) Hashtbl.t;
  durable : bool;
  rule_texts : (string, string) Hashtbl.t;
      (* durable mode only: digest -> canonical text for every rule set
         ever compiled, so evicted engines can be recompiled instead of
         erroring — the log, not the LRU cache, is the source of truth *)
  shared : Shared.t option;
      (* sharded deployments route rule texts and ledgers through the
         process-wide [Shared] state instead of the tables above, so a
         rule set published on one shard is servable (and auditable,
         with one grant-id sequence) on every other *)
  tenants : compiled Tenant.t;
      (* the multi-tenant form registry: in a sharded deployment every
         shard shares one instance (like [shared]), so a tenant
         published on one shard is servable on every other and the
         background builder domain is process-wide *)
  tenants_owned : bool;
      (* whether [shutdown] should stop the tenant registry's builder
         domain (false when the registry was passed in by the caller,
         who then owns its lifecycle) *)
  consents : Consent.t;
      (* consent-lifecycle entries (revocations, expiry horizons) keyed
         by session id; identifiers only, kept past session TTL so a
         respondent can revoke long after the session was swept. Shared
         process-wide in a sharded deployment, like the ledgers. *)
  mutable sink : Persist.sink;
  mutable requests : int;
  mutable submitted : int;
}

let create ?(backend = Engine.Compiled) ?(compiled = true)
    ?(payoff = Payoff.Blank) ?capacity ?ttl ?owns ?shared ?tenants
    ?(tenant_quota = 0) ?(resolve = fun _ -> None) ?(durable = false) ~now ()
    =
  let tenants, tenants_owned =
    match tenants with
    | Some registry -> (registry, false)
    | None -> (Tenant.create ~quota:tenant_quota (), true)
  in
  let t =
    {
      backend;
      compiled;
      payoff;
      now;
      resolve;
      registry = Registry.create ?capacity ();
      ledgers = Hashtbl.create 8;
      store = Session.create_store ?ttl ?owns ();
      methods = Hashtbl.create 8;
      durable;
      rule_texts = Hashtbl.create 8;
      shared;
      tenants;
      tenants_owned;
      consents =
        (match shared with
        | Some shared -> Shared.consents shared
        | None -> Consent.create ());
      sink = Persist.null;
      requests = 0;
      submitted = 0;
    }
  in
  (* A swept tenant session frees its quota slot even though nothing
     ever looked it up again. *)
  Session.set_on_expire t.store (fun (session : Session.t) ->
      match session.Session.tenant with
      | Some name -> Tenant.release t.tenants name
      | None -> ());
  t

let set_sink t sink = t.sink <- sink
let tenant_registry t = t.tenants

let shutdown t =
  if t.tenants_owned then Tenant.stop t.tenants

let ( let* ) = Result.bind

(* --- Shard-shared state accessors -------------------------------------------------

   A standalone service owns its rule texts and ledgers; a sharded one
   defers both to the process-wide [Shared] state. Everything below is
   written against these four accessors so the handlers read the same
   either way. *)

(* Retain the canonical text for a digest; [true] when it was new (the
   caller then owns persisting the [Rules] event exactly once,
   process-wide). A sharded service retains even when not durable —
   cross-shard digest resolution needs the text regardless. *)
let remember_text t ~digest ~text =
  match t.shared with
  | Some shared -> Shared.remember_text shared ~digest ~text
  | None ->
    t.durable
    && (not (Hashtbl.mem t.rule_texts digest))
    &&
    (Hashtbl.replace t.rule_texts digest text;
     true)

let retained_text t digest =
  match t.shared with
  | Some shared -> Shared.find_text shared digest
  | None -> Hashtbl.find_opt t.rule_texts digest

let retained_texts t =
  match t.shared with
  | Some shared -> Shared.texts shared
  | None -> Hashtbl.fold (fun d x acc -> (d, x) :: acc) t.rule_texts []

let with_ledger t digest f =
  match t.shared with
  | Some shared -> Shared.with_ledger shared digest f
  | None ->
    f
      (match Hashtbl.find_opt t.ledgers digest with
      | Some ledger -> ledger
      | None ->
        let ledger = Ledger.create () in
        Hashtbl.add t.ledgers digest ledger;
        ledger)

let fold_ledgers t f init =
  match t.shared with
  | Some shared -> Shared.fold_ledgers shared f init
  | None -> Hashtbl.fold f t.ledgers init

let ledger_count t =
  match t.shared with
  | Some shared -> Shared.ledger_count shared
  | None -> Hashtbl.length t.ledgers

(* Ledgers are namespaced per (tenant, digest): two tenants publishing
   byte-identical rules must not share a grant archive (or a grant-id
   sequence — a cross-tenant audit must never see the other tenant's
   records). The digest is hex, so ["@"] cannot collide; tenant-less
   rule sets keep the bare digest and old logs replay unchanged. *)
let ledger_key ~digest ~tenant =
  match tenant with None -> digest | Some name -> digest ^ "@" ^ name

let split_ledger_key key =
  match String.index_opt key '@' with
  | None -> (key, None)
  | Some i ->
    ( String.sub key 0 i,
      Some (String.sub key (i + 1) (String.length key - i - 1)) )

(* --- Rule-set resolution ----------------------------------------------------- *)

(* Build the full artifact for an exposure: compile the engine,
   enumerate the atlas, solve the equilibrium, allocate the fast table.
   Pure apart from the allocation — it touches neither the registry nor
   the sink, so the tenant registry's builder domain can run it off the
   request path without any locking. *)
let build_artifact ~backend ~payoff ~tabulate exposure digest =
  let provider = Workflow.provider ~backend ~payoff exposure in
  let n = Universe.size (Exposure.xp exposure) in
  let fast =
    if tabulate && n <= Pet_compile.Code.max_tabulated_predicates then
      Some (Array.make (1 lsl n) None)
    else None
  in
  { digest; exposure; provider; fast }

(* [remember:false] for tenant texts: the tenant registry retains them
   (and [Tenant_published] persists them), so they are neither copied
   into the rule-text table nor re-logged as [Rules] events. *)
let compile ?(remember = true) t text =
  match Spec.parse text with
  | Error m -> Error (Proto.errorf Proto.Invalid_params "rules: %s" m)
  | Ok exposure -> (
    let canonical = Spec.to_string exposure in
    let digest = Registry.digest canonical in
    match Registry.find_or_add t.registry digest (fun () ->
            build_artifact ~backend:t.backend ~payoff:t.payoff
              ~tabulate:t.compiled exposure digest)
    with
    | compiled, hit ->
      (* Durable mode retains the canonical text and logs each rule set
         the first time it compiles; replay refills the retained texts
         before the sink is attached, so recovered rule sets are not
         re-logged. *)
      if remember && remember_text t ~digest ~text:canonical && t.durable then
        t.sink.emit (Persist.Rules { digest; text = canonical });
      Ok (compiled, hit)
    | exception Invalid_argument m ->
      Error (Proto.errorf Proto.Invalid_params "rules: %s" m))

(* Resolve a tenant to its active version's artifact. Blocks only while
   the tenant's {e first} version is still building (later versions keep
   serving the previous one); installs a finished background build into
   the engine cache on first touch, and recompiles from the tenant's
   retained text if the cache evicted it since. *)
let resolve_tenant t name =
  match Tenant.resolve t.tenants name with
  | `Unknown ->
    Error
      (Proto.errorf Proto.Unknown_tenant
         "unknown tenant %S (publish_rules with a \"tenant\" parameter \
          creates it)"
         name)
  | `Failed (version, m) ->
    Error
      (Proto.errorf Proto.Build_failed "tenant %S version %d failed to build: %s"
         name version m)
  | `Ready resolved ->
    let* compiled, cached =
      match resolved.Tenant.res_artifact with
      | Some compiled ->
        Registry.add t.registry resolved.Tenant.res_digest compiled;
        Ok (compiled, false)
      | None -> (
        match Registry.find t.registry resolved.Tenant.res_digest with
        | Some compiled -> Ok (compiled, true)
        | None -> compile ~remember:false t resolved.Tenant.res_text)
    in
    Ok (resolved, compiled, cached)

(* Counting resolution (publish_rules / new_session / audit): cache hits
   and misses here measure how often a compilation was saved. *)
let resolve_rules t = function
  | Proto.Text text -> compile t text
  | Proto.Source name -> (
    match t.resolve name with
    | Some text -> compile t text
    | None ->
      Error (Proto.errorf Proto.Unknown_source "unknown rule source %S" name))
  | Proto.Tenant name ->
    Result.map (fun (_, compiled, cached) -> (compiled, cached))
      (resolve_tenant t name)
  | Proto.Digest digest -> (
    match Registry.find t.registry digest with
    | Some compiled -> Ok (compiled, true)
    | None -> (
      (* Durable mode never forgets a published rule set: recompile it
         from the retained canonical text instead of erroring. Tenant
         versions retain their text in the tenant registry, so a digest
         of any published tenant version also resolves here. *)
      match retained_text t digest with
      | Some text -> compile t text
      | None -> (
        match Tenant.text_of_digest t.tenants digest with
        | Some text -> compile ~remember:false t text
        | None ->
          Error
            (Proto.errorf Proto.Unknown_rules
               "no rule set with digest %s (never published, or evicted — \
                republish the rules)"
               digest))))

(* Non-counting engine re-read for a session that already resolved its
   rule set; fails only if the engine was evicted underneath it and no
   durable rule text is retained to recompile it from. *)
let engine_of_session t (session : Session.t) =
  match Registry.peek t.registry session.Session.digest with
  | Some compiled -> Ok compiled
  | None -> (
    match retained_text t session.Session.digest with
    | Some text -> Result.map fst (compile t text)
    | None -> (
      match Tenant.text_of_digest t.tenants session.Session.digest with
      | Some text -> Result.map fst (compile ~remember:false t text)
      | None ->
        Error
          (Proto.errorf Proto.Unknown_rules
             "the engine for this session's rules (digest %s) was evicted \
              from the cache; republish the rules and retry"
             session.Session.digest)))

let find_session t id ~now =
  match Session.find t.store id ~now with
  | Ok session -> Ok session
  | Error `Unknown ->
    Error (Proto.errorf Proto.Unknown_session "unknown session %S" id)
  | Error `Expired ->
    Error (Proto.errorf Proto.Session_expired "session %S has expired" id)

let require_state (session : Session.t) allowed ~verb =
  if List.mem session.Session.state allowed then Ok ()
  else
    Error
      (Proto.errorf Proto.Bad_state "cannot %s a session in state %S" verb
         (Session.state_name session.Session.state))

(* --- Consent lifecycle: revoke and expire ------------------------------------- *)

(* Tombstone the grant a consent entry points at, if any. Idempotent:
   returns the grant id only the first time it actually erased one. *)
let tombstone_grant t (entry : Consent.entry) =
  match entry.Consent.grant_id with
  | Some grant_id when entry.Consent.key <> "" ->
    with_ledger t entry.Consent.key (fun ledger ->
        match Ledger.revoke ledger grant_id with
        | `Revoked -> Some grant_id
        | `Already | `Unknown -> None)
  | _ -> None

(* Resolve the target of a lifecycle request. The session must be live
   or have a consent entry (a submitted session keeps one for the
   lifetime of the archive, so revocation works long after the TTL
   sweep), and must not already be revoked or expired. *)
let lifecycle_entry t ~session:sid ~verb =
  let live = Session.peek t.store sid in
  match Consent.find t.consents sid with
  | Some entry when entry.Consent.revoked_at <> None ->
    Error
      (Proto.errorf Proto.Bad_state
         "cannot %s session %S: consent was already revoked" verb sid)
  | Some entry when entry.Consent.expired ->
    Error
      (Proto.errorf Proto.Bad_state
         "cannot %s session %S: its grant already expired" verb sid)
  | (Some _ | None) as found -> (
    match (found, live) with
    | None, None ->
      Error (Proto.errorf Proto.Unknown_session "unknown session %S" sid)
    | _ ->
      let entry =
        match found with
        | Some entry -> entry
        | None ->
          let s = Option.get live in
          Consent.register t.consents ~session:sid
            ~key:
              (ledger_key ~digest:s.Session.digest ~tenant:s.Session.tenant)
            ?tenant:s.Session.tenant ()
      in
      (* Entries recovered from pre-lifecycle logs (whose [Grant] events
         carry no session) learn the link from the live session. *)
      (match live with
      | Some s -> (
        match s.Session.grant_id with
        | Some grant_id -> Consent.note_granted entry grant_id
        | None -> ())
      | None -> ());
      Ok (entry, live))

let revoke t ~session:sid ~now =
  let* entry, live = lifecycle_entry t ~session:sid ~verb:"revoke" in
  Consent.revoke t.consents entry ~at:now;
  let tombstoned = tombstone_grant t entry in
  (* The live session dies with the consent: a [Reported] valuation or
     [Chosen] form is erased now, not at the TTL. *)
  (match live with Some s -> Session.purge t.store s | None -> ());
  t.sink.emit (Persist.Session_revoked { id = sid; at = now });
  Ok
    (Json.Obj
       ([ ("session", Json.String sid); ("revoked", Json.Bool true) ]
       @
       match tombstoned with
       | Some grant_id -> [ ("grant", Json.Int grant_id) ]
       | None -> []))

let expire t ~session:sid ~after ~now =
  let* entry, _live = lifecycle_entry t ~session:sid ~verb:"expire" in
  let horizon = now +. after in
  Consent.set_horizon t.consents entry ~horizon ~at:now;
  (* The horizon itself is durable; its later application is not logged
     — it is derivable (replay re-arms horizons and re-applies any that
     passed), so the WAL stays append-only and replay-deterministic. *)
  t.sink.emit (Persist.Session_expiry { id = sid; horizon; at = now });
  Ok
    (Json.Obj
       [ ("session", Json.String sid); ("expires_at", Json.Float horizon) ])

(* Apply horizons that have passed: tombstone each due entry's grant,
   purge its live session if any, and mark it expired. The [Consent]
   store hands back the due entries so the ledger lock is never taken
   under the consent lock. *)
let apply_due t due =
  List.iter
    (fun (entry : Consent.entry) ->
      ignore (tombstone_grant t entry);
      (match Session.peek t.store entry.Consent.session with
      | Some s -> Session.purge t.store s
      | None -> ());
      Consent.note_expired t.consents entry)
    due;
  List.length due

let consent_step ?budget t ~now =
  apply_due t (Consent.due ?budget t.consents ~now)

(* The unbudgeted pass, run once after recovery: apply every horizon
   the crash (or downtime) let pass. Reads the clock only when something
   is armed, so recovering a horizon-free log leaves a deterministic
   clock (the transcript tests depend on it). *)
let apply_horizons t =
  if (Consent.counters t.consents).Consent.pending = 0 then 0
  else apply_due t (Consent.all_due t.consents ~now:(t.now ()))

(* A session whose armed horizon has already passed must not establish
   anything more. The periodic sweep may simply not have reached it yet,
   so apply the expiry on the spot and answer as expired — otherwise a
   [choose_option] or [submit_form] slipping in between horizon and
   sweep would persist an establishing record past the horizon, and the
   offline auditor would rightly flag a healthy log. *)
let horizon_guard t ~session:sid ~now =
  match Consent.find t.consents sid with
  | Some ({ Consent.horizon = Some (h, _); expired = false; _ } as entry)
    when h <= now ->
    ignore (apply_due t [ entry ]);
    Error (Proto.errorf Proto.Session_expired "session %S has expired" sid)
  | Some { Consent.expired = true; _ } ->
    (* Already applied (by the sweep): answer as expired, not unknown —
       the respondent should learn the grant is gone, not that the
       session id was forgotten. *)
    Error (Proto.errorf Proto.Session_expired "session %S has expired" sid)
  | _ -> Ok ()

(* --- Handlers ----------------------------------------------------------------- *)

let rules_summary compiled ~cached =
  let atlas = Workflow.atlas compiled.provider in
  Json.Obj
    [
      ("digest", Json.String compiled.digest);
      ("cached", Json.Bool cached);
      ("predicates", Json.Int (Universe.size (Exposure.xp compiled.exposure)));
      ("benefits", Json.Int (Universe.size (Exposure.xb compiled.exposure)));
      ("mas", Json.Int (Atlas.mas_count atlas));
      ("eligible", Json.Int (Atlas.player_count atlas));
    ]

(* --- Tenant handlers ------------------------------------------------------------ *)

(* Parse and canonicalize the rules on the request path (so malformed
   text errors synchronously), then hand the expensive part — engine,
   atlas, equilibrium — to the tenant registry's builder domain as a
   pure closure. *)
let tenant_text t = function
  | Proto.Text text -> Ok text
  | Proto.Source name -> (
    match t.resolve name with
    | Some text -> Ok text
    | None ->
      Error (Proto.errorf Proto.Unknown_source "unknown rule source %S" name))
  | Proto.Digest _ | Proto.Tenant _ ->
    (* unreachable from the wire: the decoder only admits text/source
       rules for tenant publishes *)
    Error
      (Proto.error Proto.Invalid_params
         "tenant rules must be given as text or a named source")

let tenant_version_json ~name ~version ~digest ~state =
  Json.Obj
    [
      ("tenant", Json.String name);
      ("version", Json.Int version);
      ("digest", Json.String digest);
      ("state", Json.String state);
    ]

let prepare_tenant_build t rules =
  let* text = tenant_text t rules in
  match Spec.parse text with
  | Error m -> Error (Proto.errorf Proto.Invalid_params "rules: %s" m)
  | Ok exposure ->
    let canonical = Spec.to_string exposure in
    let digest = Registry.digest canonical in
    let build () =
      match
        build_artifact ~backend:t.backend ~payoff:t.payoff
          ~tabulate:t.compiled exposure digest
      with
      | artifact -> Ok artifact
      | exception Invalid_argument m -> Error m
      | exception e -> Error (Printexc.to_string e)
    in
    Ok (canonical, digest, build)

let publish_tenant t ~name ~quota rules ~now =
  let* canonical, digest, build = prepare_tenant_build t rules in
  match Tenant.publish t.tenants ~name ~digest ~text:canonical ?quota ~now
          ~build ()
  with
  | `Created ->
    (* Durable before the build: the latest accepted version, not the
       latest built one, is what recovery must restore. *)
    t.sink.emit
      (Persist.Tenant_published
         { tenant = name; version = 1; digest; text = canonical; quota; at = now });
    (* Rendered from the [`Created] arm, not from a state read, so the
       response says "building" whether or not the builder already
       finished — deterministic transcripts under any scheduling. *)
    Ok (tenant_version_json ~name ~version:1 ~digest ~state:"building")
  | `Existing (version, state) ->
    Ok
      (tenant_version_json ~name ~version ~digest
         ~state:(Tenant.state_name state))
  | `Conflict version ->
    Error
      (Proto.errorf Proto.Bad_state
         "tenant %S already serves version %d with a different rule set; \
          use update_rules to publish a new version"
         name version)

let update_tenant t ~name ~quota rules ~now =
  let* canonical, digest, build = prepare_tenant_build t rules in
  match Tenant.update t.tenants ~name ~digest ~text:canonical ?quota ~now
          ~build ()
  with
  | `Unknown ->
    Error
      (Proto.errorf Proto.Unknown_tenant
         "unknown tenant %S (publish_rules with a \"tenant\" parameter \
          creates it)"
         name)
  | `Queued version ->
    t.sink.emit
      (Persist.Tenant_published
         {
           tenant = name;
           version;
           digest;
           text = canonical;
           quota;
           at = now;
         });
    Ok (tenant_version_json ~name ~version ~digest ~state:"building")
  | `Unchanged (version, state) ->
    Ok
      (tenant_version_json ~name ~version ~digest
         ~state:(Tenant.state_name state))

let tenant_info t ~name ~wait =
  match name with
  | None ->
    let names = Tenant.names t.tenants in
    Ok
      (Json.Obj
         [
           ("count", Json.Int (List.length names));
           ("tenants", Json.List (List.map (fun n -> Json.String n) names));
         ])
  | Some name -> (
    (* [wait] is the deterministic barrier: block until every queued
       build for this tenant settled, then report. *)
    if wait then Tenant.await t.tenants name;
    match Tenant.info t.tenants name with
    | None ->
      Error (Proto.errorf Proto.Unknown_tenant "unknown tenant %S" name)
    | Some info ->
      Ok
        (Json.Obj
           [
             ("tenant", Json.String info.Tenant.info_name);
             ("versions", Json.Int info.Tenant.versions);
             ("active", Json.Int info.Tenant.active);
             ("digest", Json.String info.Tenant.digest);
             ("state", Json.String (Tenant.state_name info.Tenant.state));
             ("quota", Json.Int info.Tenant.quota);
             ( "sessions",
               Json.Obj
                 [
                   ("active", Json.Int info.Tenant.sessions_active);
                   ("created", Json.Int info.Tenant.sessions_created);
                   ("submitted", Json.Int info.Tenant.submitted);
                 ] );
           ]))

let publish_rules t ~rules ~tenant ~quota ~now =
  match tenant with
  | None -> (
    let* compiled, cached = resolve_rules t rules in
    Ok (rules_summary compiled ~cached))
  | Some name -> publish_tenant t ~name ~quota rules ~now

let new_session t rules ~now =
  match rules with
  | Proto.Tenant name ->
    (* Pin the tenant's active version at open: the session keeps this
       digest (and its answers) across any later hot swap. *)
    let* resolved, compiled, _ = resolve_tenant t name in
    let* () =
      match Tenant.try_admit t.tenants name with
      | `Ok -> Ok ()
      | `Over quota ->
        Error
          (Proto.errorf Proto.Quota_exceeded
             "tenant %S is at its quota of %d active sessions" name quota)
    in
    let session =
      Session.create t.store ~digest:compiled.digest ~tenant:name ~now ()
    in
    t.sink.emit
      (Persist.Session_created
         {
           id = session.Session.id;
           digest = compiled.digest;
           tenant = Some name;
           at = now;
         });
    Ok
      (Json.Obj
         [
           ("session", Json.String session.Session.id);
           ("tenant", Json.String name);
           ("version", Json.Int resolved.Tenant.res_version);
           ("digest", Json.String compiled.digest);
         ])
  | _ ->
    let* compiled, cached = resolve_rules t rules in
    let session = Session.create t.store ~digest:compiled.digest ~now () in
    t.sink.emit
      (Persist.Session_created
         { id = session.Session.id; digest = compiled.digest; tenant = None; at = now });
    Ok
      (Json.Obj
         [
           ("session", Json.String session.Session.id);
           ("digest", Json.String compiled.digest);
           ("cached", Json.Bool cached);
         ])

(* A handler result: either a JSON tree for the encoder, or (from the
   compiled answer table) the same JSON already rendered to text —
   [Proto.ok_response_text] splices it without re-walking the tree,
   producing byte-identical responses either way. *)
type payload = Tree of Json.t | Rendered of string

let get_report t ~session:sid ~valuation ~now =
  let* session = find_session t sid ~now in
  let* () =
    require_state session [ Session.Created; Session.Reported ]
      ~verb:"get_report"
  in
  let* compiled = engine_of_session t session in
  let* v =
    match Total.of_string (Exposure.xp compiled.exposure) valuation with
    | v -> Ok v
    | exception Invalid_argument m ->
      Error (Proto.errorf Proto.Invalid_params "valuation: %s" m)
  in
  let reported options payload =
    session.Session.valuation <- Some v;
    session.Session.options <- options;
    session.Session.state <- Session.Reported;
    Session.touch session ~now;
    Ok payload
  in
  let compute () =
    match Workflow.report_for compiled.provider v with
    | Error m -> Error (Proto.error Proto.Ineligible m)
    | Ok report ->
      let options =
        List.map
          (fun (o : Report.option_report) -> (o.Report.mas, o.Report.benefits))
          report.Report.options
      in
      Ok (report, options)
  in
  match compiled.fast with
  | None -> (
    match compute () with
    | Error e -> Error e
    | Ok (report, options) -> reported options (Tree (Report.to_json report)))
  | Some table -> (
    let idx = Total.bits v in
    match table.(idx) with
    | Some (Report_payload { payload; options }) ->
      reported options (Rendered payload)
    | Some (Report_refused m) -> Error (Proto.error Proto.Ineligible m)
    | None -> (
      (* First sight of this valuation: compute once through the full
         pipeline and keep the rendered bytes — every later respondent
         with the same form contents replays them. *)
      match compute () with
      | Error e ->
        (match e with
        | { Proto.code = Proto.Ineligible; message } ->
          table.(idx) <- Some (Report_refused message)
        | _ -> ());
        Error e
      | Ok (report, options) ->
        let payload = Json.to_string (Report.to_json report) in
        table.(idx) <- Some (Report_payload { payload; options });
        reported options (Rendered payload)))

let choose_option t ~session:sid ~choice ~now =
  let* () = horizon_guard t ~session:sid ~now in
  let* session = find_session t sid ~now in
  let* () = require_state session [ Session.Reported ] ~verb:"choose_option" in
  let options = session.Session.options in
  let* mas, benefits =
    match choice with
    | Proto.Index i -> (
      (* [List.nth_opt] raises on negative indices rather than returning
         [None], so guard explicitly. *)
      match if i < 0 then None else List.nth_opt options i with
      | Some option -> Ok option
      | None ->
        Error
          (Proto.errorf Proto.Invalid_params
             "option %d is out of range (the report offered %d options)" i
             (List.length options)))
    | Proto.Mas s -> (
      match
        List.find_opt (fun (mas, _) -> Partial.to_string mas = s) options
      with
      | Some option -> Ok option
      | None ->
        Error
          (Proto.errorf Proto.Invalid_params
             "%S is not one of the options offered by the report" s))
  in
  (* Requirement R2 enforced here: the full valuation and the unchosen
     options die; from now on only the minimized form exists. *)
  session.Session.valuation <- None;
  session.Session.options <- [];
  session.Session.chosen <- Some (mas, benefits);
  session.Session.state <- Session.Chosen;
  Session.touch session ~now;
  (* Only the minimized form reaches the log — the raw valuation just
     died in memory and was never representable as an event (R2 on
     disk). *)
  t.sink.emit
    (Persist.Session_chosen
       {
         id = session.Session.id;
         mas = Partial.to_string mas;
         benefits;
         at = now;
       });
  Ok
    (Json.Obj
       [
         ("mas", Json.String (Partial.to_string mas));
         ("benefits", Json.List (List.map (fun b -> Json.String b) benefits));
       ])

let submit_form t ~session:sid ~now =
  let* () = horizon_guard t ~session:sid ~now in
  let* session = find_session t sid ~now in
  let* () = require_state session [ Session.Chosen ] ~verb:"submit_form" in
  let* compiled = engine_of_session t session in
  let mas, _ = Option.get session.Session.chosen in
  match Workflow.submit compiled.provider mas with
  | Error m -> Error (Proto.error Proto.Rejected m)
  | Ok grant ->
    let key =
      ledger_key ~digest:session.Session.digest ~tenant:session.Session.tenant
    in
    let grant_id =
      with_ledger t key (fun ledger -> Ledger.record ledger grant)
    in
    session.Session.grant_id <- Some grant_id;
    session.Session.state <- Session.Submitted;
    t.submitted <- t.submitted + 1;
    (match session.Session.tenant with
    | Some name -> Tenant.note_submitted t.tenants name
    | None -> ());
    (* Track where the archived record lives, so a later [revoke] or
       [expire] can reach it even after the session is swept. *)
    let entry =
      Consent.register t.consents ~session:session.Session.id ~key
        ?tenant:session.Session.tenant ()
    in
    Consent.note_granted entry grant_id;
    Session.touch session ~now;
    t.sink.emit
      (Persist.Grant
         {
           digest = session.Session.digest;
           grant_id;
           form = Partial.to_string grant.Workflow.form;
           benefits = grant.Workflow.benefits;
           session = Some session.Session.id;
           tenant = session.Session.tenant;
           revoked = false;
         });
    t.sink.emit
      (Persist.Session_submitted
         { id = session.Session.id; grant_id; at = now });
    Ok
      (Json.Obj
         [
           ("grant", Json.Int grant_id);
           ("form", Json.String (Partial.to_string grant.Workflow.form));
           ( "benefits",
             Json.List
               (List.map (fun b -> Json.String b) grant.Workflow.benefits) );
         ])

let audit t rules =
  let* compiled, _ = resolve_rules t rules in
  (* Auditing by tenant reads that tenant's namespaced ledger; the same
     digest audited bare sees only tenant-less grants. *)
  let tenant =
    match rules with Proto.Tenant name -> Some name | _ -> None
  in
  let key = ledger_key ~digest:compiled.digest ~tenant in
  let records, stored_values, tombstones, failures =
    with_ledger t key (fun ledger ->
        ( Ledger.size ledger,
          Ledger.stored_values ledger,
          Ledger.tombstones ledger,
          Ledger.audit ledger compiled.provider ))
  in
  Ok
    (Json.Obj
       ([
          ("digest", Json.String compiled.digest);
          ("records", Json.Int records);
          ("stored_values", Json.Int stored_values);
        ]
       (* Only once a revocation or expiry has landed, so pre-lifecycle
          transcripts keep their bytes. *)
       @ (if tombstones = 0 then [] else [ ("revoked", Json.Int tombstones) ])
       @ [ ("failures", Json.List (List.map (fun i -> Json.Int i) failures)) ]
       ))

(* --- Recovery: replaying and snapshotting durable events ----------------------- *)

let compiled_of_digest t digest =
  match Registry.peek t.registry digest with
  | Some compiled -> Ok compiled
  | None -> (
    let recompile ?remember text =
      match compile ?remember t text with
      | Ok (compiled, _) -> Ok compiled
      | Error e -> Error e.Proto.message
    in
    match retained_text t digest with
    | Some text -> recompile text
    | None -> (
      (* Tenant versions retain their text in the tenant registry, not
         the plain rule-text table — same fallback as [engine_of_session]. *)
      match Tenant.text_of_digest t.tenants digest with
      | Some text -> recompile ~remember:false text
      | None -> Error (Printf.sprintf "unknown rule set %s" digest)))

(* Replay one recovered event. The log records only transitions that
   committed, so replay bypasses the request-level guards (state checks,
   expiry at the replay clock) and re-applies the state change directly;
   any failure here means the log disagrees with the semantics (corrupt
   or reordered) and is reported, never raised. *)
let apply_event t event =
  let ( let* ) = Result.bind in
  let session_of id =
    match Session.peek t.store id with
    | Some session -> Ok session
    | None -> Error (Printf.sprintf "event for unknown session %S" id)
  in
  let partial_of compiled s =
    match Partial.of_string (Exposure.xp compiled.exposure) s with
    | p -> Ok p
    | exception Invalid_argument m -> Error m
  in
  match event with
  | Persist.Rules { digest; text } -> (
    match compile t text with
    | Error e -> Error e.Proto.message
    | Ok (compiled, _) ->
      if compiled.digest = digest then Ok ()
      else
        Error
          (Printf.sprintf
             "rules event digest %s does not match the recompiled text (%s)"
             digest compiled.digest))
  | Persist.Tenant_published { tenant; version; digest; text; quota; at } ->
    (* Restored versions are [Ready] with no artifact: the engine is
       recompiled lazily from the retained text on first use, so replay
       stays cheap no matter how many tenants the log holds. *)
    Tenant.restore t.tenants ~name:tenant ~version ~digest ~text ?quota
      ~now:at ();
    Ok ()
  | Persist.Session_created { id; digest; tenant; at } ->
    ignore (Session.restore t.store ~id ~digest ?tenant ~now:at ());
    (match tenant with
    | Some name -> Tenant.note_restored t.tenants name
    | None -> ());
    Ok ()
  | Persist.Session_chosen { id; mas; benefits; at } ->
    let* session = session_of id in
    let* compiled = compiled_of_digest t session.Session.digest in
    let* mas = partial_of compiled mas in
    session.Session.valuation <- None;
    session.Session.options <- [];
    session.Session.chosen <- Some (mas, benefits);
    session.Session.state <- Session.Chosen;
    Session.touch session ~now:at;
    Ok ()
  | Persist.Session_submitted { id; grant_id; at } ->
    let* session = session_of id in
    session.Session.grant_id <- Some grant_id;
    session.Session.state <- Session.Submitted;
    Session.touch session ~now:at;
    Ok ()
  | Persist.Grant { digest; grant_id; form; benefits; session; tenant; revoked }
    ->
    let key = ledger_key ~digest ~tenant in
    let* record =
      if revoked then
        (* A snapshot tombstone: the id slot is preserved (ordering
           checks below still hold) but the empty form is never parsed. *)
        Ok (fun ledger -> ignore (Ledger.record_tombstone ledger))
      else
        let* compiled = compiled_of_digest t digest in
        let* form = partial_of compiled form in
        Ok
          (fun ledger ->
            ignore (Ledger.record ledger { Workflow.form; benefits }))
    in
    let* () =
      with_ledger t key (fun ledger ->
          if Ledger.size ledger <> grant_id then
            Error
              (Printf.sprintf
                 "grant %d for rule set %s arrived out of order (ledger at %d)"
                 grant_id key (Ledger.size ledger))
          else begin
            record ledger;
            Ok ()
          end)
    in
    (* Re-link the consent entry so a post-recovery revoke (or a replayed
       one) finds the archived record. *)
    (match session with
    | Some session ->
      let entry = Consent.register t.consents ~session ~key ?tenant () in
      Consent.note_granted entry grant_id
    | None -> ());
    t.submitted <- t.submitted + 1;
    Ok ()
  | Persist.Session_revoked { id; at } ->
    (* Replay must not resurrect revoked data: purge the live session if
       the log recreated it, and tombstone the linked grant. All three
       steps are idempotent — a snapshot may already hold the tombstone. *)
    let entry = Consent.register t.consents ~session:id () in
    (match Session.peek t.store id with
    | Some s ->
      (match s.Session.grant_id with
      | Some grant_id when entry.Consent.grant_id = None ->
        (* pre-lifecycle [Grant] events carry no session link *)
        if entry.Consent.key = "" then
          entry.Consent.key <-
            ledger_key ~digest:s.Session.digest ~tenant:s.Session.tenant;
        Consent.note_granted entry grant_id
      | _ -> ());
      Session.purge t.store s
    | None -> ());
    Consent.revoke t.consents entry ~at;
    ignore (tombstone_grant t entry);
    Ok ()
  | Persist.Session_expiry { id; horizon; at } ->
    (* Re-arm only: whether the horizon has passed is judged against the
       service clock after replay completes ({!apply_horizons}), not
       against the replay clock. *)
    let entry = Consent.register t.consents ~session:id () in
    Consent.set_horizon t.consents entry ~horizon ~at;
    Ok ()

(* The live state as an equivalent event sequence — what a snapshot
   stores. Replaying [state_events] recreates every rule set, archived
   grant and live session (a [Reported] session reverts to [Created]:
   its raw valuation is exactly what must not be persisted). Ordering:
   rule sets and tenant versions first, then grants in id order per
   rule set, then sessions in id order, so replay dependencies always
   point backwards. *)
let state_events t =
  let by_key l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rules =
    List.map
      (fun (digest, text) -> Persist.Rules { digest; text })
      (by_key (retained_texts t))
  in
  let tenants =
    List.concat_map
      (fun (name, quota, versions) ->
        let quota = if quota = 0 then None else Some quota in
        List.map
          (fun (version, digest, text, at) ->
            Persist.Tenant_published
              { tenant = name; version; digest; text; quota; at })
          versions)
      (Tenant.dump t.tenants)
  in
  (* Which session produced each grant, from the consent entries — the
     ledger itself stores no identifiers beyond the minimized form. *)
  let consent_entries = Consent.entries t.consents in
  let grant_session =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (e : Consent.entry) ->
        match e.Consent.grant_id with
        | Some grant_id when e.Consent.key <> "" ->
          Hashtbl.replace tbl (e.Consent.key, grant_id) e.Consent.session
        | _ -> ())
      consent_entries;
    tbl
  in
  let grants =
    List.concat_map
      (fun (key, ledger) ->
        let digest, tenant = split_ledger_key key in
        List.map
          (fun (e : Ledger.entry) ->
            let session = Hashtbl.find_opt grant_session (key, e.Ledger.id) in
            match e.Ledger.grant with
            | Some grant ->
              Persist.Grant
                {
                  digest;
                  grant_id = e.Ledger.id;
                  form = Partial.to_string grant.Workflow.form;
                  benefits = grant.Workflow.benefits;
                  session;
                  tenant;
                  revoked = false;
                }
            | None ->
              (* The id slot of an erased grant: replay keeps the
                 sequence aligned without ever materializing a form. *)
              Persist.Grant
                {
                  digest;
                  grant_id = e.Ledger.id;
                  form = "";
                  benefits = [];
                  session;
                  tenant;
                  revoked = true;
                })
          (Ledger.entries ledger))
      (by_key (fold_ledgers t (fun d l acc -> (d, l) :: acc) []))
  in
  let session_key (s : Session.t) =
    (String.length s.Session.id, s.Session.id)
  in
  let sessions =
    Session.all t.store
    |> List.sort (fun a b -> compare (session_key a) (session_key b))
    |> List.concat_map (fun (s : Session.t) ->
           Persist.Session_created
             {
               id = s.Session.id;
               digest = s.Session.digest;
               tenant = s.Session.tenant;
               at = s.Session.created_at;
             }
           :: (match s.Session.chosen with
              | Some (mas, benefits) ->
                [
                  Persist.Session_chosen
                    {
                      id = s.Session.id;
                      mas = Partial.to_string mas;
                      benefits;
                      at = s.Session.last_active;
                    };
                ]
              | None -> [])
           @
           match (s.Session.state, s.Session.grant_id) with
           | Session.Submitted, Some grant_id ->
             [
               Persist.Session_submitted
                 { id = s.Session.id; grant_id; at = s.Session.last_active };
             ]
           | _ -> [])
  in
  (* Lifecycle events last: a revocation (or horizon) may reference a
     session the snapshot no longer holds — replay tolerates that — but
     never one that appears later. An expired entry re-emits its
     horizon; re-applying it on recovery is idempotent. *)
  let lifecycle =
    List.concat_map
      (fun (e : Consent.entry) ->
        match (e.Consent.revoked_at, e.Consent.horizon) with
        | Some at, _ ->
          [ Persist.Session_revoked { id = e.Consent.session; at } ]
        | None, Some (horizon, at) ->
          [ Persist.Session_expiry { id = e.Consent.session; horizon; at } ]
        | None, None -> [])
      consent_entries
  in
  rules @ tenants @ grants @ sessions @ lifecycle

(* --- Observability ---------------------------------------------------------------- *)

module Obs = Pet_obs.Metrics
module Trace = Pet_obs.Trace
module Slo = Pet_obs.Slo

(* One process-global SLO tracker, like the metrics registry: in the
   sharded TCP server every shard records into it, so windows describe
   the whole process, not one shard. Keys are wire method names plus
   "tenant:NAME". *)
let slo = Slo.create ()

(* Requests are counted on arrival (before dispatch), so a [metrics]
   response includes the request that asked for it; latencies are
   observed after the response is built. Histograms are cached per
   method so the per-request path does no label rendering. *)
let obs_requests = Obs.counter "pet_server_requests_total"
let obs_errors = Obs.counter "pet_server_errors_total"
let obs_swept = Obs.counter "pet_server_sessions_swept_total"

let latency_hist name =
  Obs.histogram ~labels:[ ("method", name) ] "pet_server_request_seconds"

(* One histogram per wire method, resolved by a static match so the
   per-request path does no hashing or label rendering. *)
let obs_lat_publish_rules = latency_hist "publish_rules"
let obs_lat_update_rules = latency_hist "update_rules"
let obs_lat_tenant = latency_hist "tenant"
let obs_lat_new_session = latency_hist "new_session"
let obs_lat_get_report = latency_hist "get_report"
let obs_lat_choose_option = latency_hist "choose_option"
let obs_lat_submit_form = latency_hist "submit_form"
let obs_lat_revoke = latency_hist "revoke"
let obs_lat_expire = latency_hist "expire"
let obs_lat_audit = latency_hist "audit"
let obs_lat_stats = latency_hist "stats"
let obs_lat_metrics = latency_hist "metrics"
let obs_lat_trace = latency_hist "trace"
let obs_lat_invalid = latency_hist "invalid"

let obs_lat_watch = latency_hist "watch"

(* Per-tenant request attribution is label-rendered per request (only
   for requests that name a tenant), so help lines register once here
   rather than on the hot path. *)
let () =
  Obs.set_help "pet_tenant_requests_total"
    "Requests attributed to a tenant (by session or by name).";
  Obs.set_help "pet_tenant_errors_total"
    "Failed requests attributed to a tenant.";
  Obs.set_help "pet_tenant_request_seconds"
    "Request latency attributed to a tenant.";
  Obs.set_help "pet_server_requests_total" "Protocol requests received.";
  Obs.set_help "pet_server_errors_total" "Protocol requests answered with an error.";
  Obs.set_help "pet_server_request_seconds" "Request latency by wire method."

let obs_latency = function
  | "publish_rules" -> obs_lat_publish_rules
  | "update_rules" -> obs_lat_update_rules
  | "tenant" -> obs_lat_tenant
  | "new_session" -> obs_lat_new_session
  | "get_report" -> obs_lat_get_report
  | "choose_option" -> obs_lat_choose_option
  | "submit_form" -> obs_lat_submit_form
  | "revoke" -> obs_lat_revoke
  | "expire" -> obs_lat_expire
  | "audit" -> obs_lat_audit
  | "stats" -> obs_lat_stats
  | "metrics" -> obs_lat_metrics
  | "trace" -> obs_lat_trace
  | "watch" -> obs_lat_watch
  | _ -> obs_lat_invalid

let obs_registry_size = Obs.gauge "pet_registry_engines"
let obs_registry_hits = Obs.gauge "pet_registry_hits"
let obs_registry_misses = Obs.gauge "pet_registry_misses"
let obs_registry_evictions = Obs.gauge "pet_registry_evictions"
let obs_sessions_active = Obs.gauge "pet_sessions_active"
let obs_sessions_created = Obs.gauge "pet_sessions_created"
let obs_sessions_expired = Obs.gauge "pet_sessions_expired"
let obs_submitted = Obs.gauge "pet_grants_submitted"
let obs_ledger_records = Obs.gauge "pet_ledger_records"
let obs_consent_revoked = Obs.gauge "pet_consent_revoked"
let obs_consent_expired = Obs.gauge "pet_consent_expired"
let obs_consent_pending = Obs.gauge "pet_consent_pending"
let obs_tenants = Obs.gauge "pet_tenants"
let obs_tenant_builds = Obs.gauge "pet_tenant_builds"
let obs_tenant_build_failures = Obs.gauge "pet_tenant_build_failures"
let obs_tenant_building = Obs.gauge "pet_tenant_building"

(* The service owns these aggregates, so rather than pushing deltas on
   every request it mirrors them into gauges when a snapshot is taken —
   stale-free and free on the request path. *)
let sync_gauges t =
  let r = Registry.stats t.registry in
  Obs.set_gauge obs_registry_size (float_of_int r.Registry.size);
  Obs.set_gauge obs_registry_hits (float_of_int r.Registry.hits);
  Obs.set_gauge obs_registry_misses (float_of_int r.Registry.misses);
  Obs.set_gauge obs_registry_evictions (float_of_int r.Registry.evictions);
  let s = Session.counters t.store in
  Obs.set_gauge obs_sessions_active (float_of_int s.Session.active);
  Obs.set_gauge obs_sessions_created (float_of_int s.Session.created);
  Obs.set_gauge obs_sessions_expired (float_of_int s.Session.expired);
  Obs.set_gauge obs_submitted (float_of_int t.submitted);
  let records = fold_ledgers t (fun _ l acc -> acc + Ledger.size l) 0 in
  Obs.set_gauge obs_ledger_records (float_of_int records);
  let c = Consent.counters t.consents in
  Obs.set_gauge obs_consent_revoked (float_of_int c.Consent.revoked);
  Obs.set_gauge obs_consent_expired (float_of_int c.Consent.expired);
  Obs.set_gauge obs_consent_pending (float_of_int c.Consent.pending);
  let tt = Tenant.totals t.tenants in
  Obs.set_gauge obs_tenants (float_of_int tt.Tenant.tenants);
  Obs.set_gauge obs_tenant_builds (float_of_int tt.Tenant.builds);
  Obs.set_gauge obs_tenant_build_failures
    (float_of_int tt.Tenant.build_failures);
  Obs.set_gauge obs_tenant_building (float_of_int tt.Tenant.building);
  Pet_obs.Process.sync ()

let json_of_hist (h : Obs.hist_stats) =
  Json.Obj
    [
      ("count", Json.Int h.Obs.count);
      ("sum", Json.Float h.Obs.sum);
      ("max", Json.Float h.Obs.max);
      ("p50", Json.Float (Obs.quantile h 0.5));
      ("p90", Json.Float (Obs.quantile h 0.9));
      ("p99", Json.Float (Obs.quantile h 0.99));
    ]

let metrics_payload t ~now format =
  sync_gauges t;
  Slo.sync slo ~now;
  let snapshot = Obs.snapshot () in
  match format with
  | Proto.Mprometheus -> Json.String (Pet_obs.Export.prometheus snapshot)
  | Proto.Mjson ->
    Json.Obj
      [
        ("enabled", Json.Bool (Obs.enabled ()));
        ( "counters",
          Json.Obj
            (List.map (fun (n, v) -> (n, Json.Int v)) snapshot.Obs.counters)
        );
        ( "gauges",
          Json.Obj
            (List.map (fun (n, v) -> (n, Json.Float v)) snapshot.Obs.gauges)
        );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, h) -> (n, json_of_hist h))
               snapshot.Obs.histograms) );
      ]

(* One [watch] frame: a full (fresh-encoder) flight snapshot of every
   instrument, wrapped as {"watch":{...}}. Streaming is the transport's
   loop — it re-dispatches the same request per frame — so consecutive
   frames are full snapshots and clients compute rates by diffing them.
   Rendered (not Tree): the flight encoder already emits JSON text, and
   sharing it keeps watch frames and journal records one format. *)
let watch_frame t ~now =
  sync_gauges t;
  Slo.sync slo ~now;
  let snapshot = Obs.snapshot () in
  let enc = Pet_obs.Flight.create () in
  Rendered
    (Printf.sprintf "{\"watch\":%s}" (Pet_obs.Flight.snap enc ~now snapshot))

(* --- Traces --------------------------------------------------------------------- *)

let json_of_ann = function
  | Trace.String s -> Json.String s
  | Trace.Int i -> Json.Int i
  | Trace.Bool b -> Json.Bool b
  | Trace.Float f -> Json.Float f

let annotations_json (tr : Trace.t) =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_ann v)) tr.Trace.annotations)

(* The Chrome export ships as one JSON string, like the Prometheus
   exposition: the client writes it to a file and loads it in a viewer. *)
let trace_capture_json format (tr : Trace.t) =
  match format with
  | Proto.Tchrome ->
    Json.Obj
      [
        ("id", Json.String tr.Trace.id);
        ("chrome", Json.String (Trace.chrome tr));
      ]
  | Proto.Ttree ->
    Json.Obj
      [
        ("id", Json.String tr.Trace.id);
        ("duration_s", Json.Float tr.Trace.duration);
        ("slow", Json.Bool tr.Trace.slow);
        ("annotations", annotations_json tr);
        ("tree", Json.String (Trace.render tr));
      ]

(* [trace] runs while its own capture is still open, so "last" and the
   slow listing describe the previous requests, never the [trace] call
   itself. *)
let trace_payload query format =
  if not (Trace.enabled ()) then
    Error
      (Proto.error Proto.Bad_state
         "tracing is disabled on this server (serve with --trace-slow)")
  else
    match query with
    | Proto.Tlast -> (
      match Trace.recent () with
      | tr :: _ -> Ok (trace_capture_json format tr)
      | [] -> Error (Proto.error Proto.Invalid_params "no traces captured yet"))
    | Proto.Tget id -> (
      match Trace.find id with
      | Some tr -> Ok (trace_capture_json format tr)
      | None ->
        Error
          (Proto.errorf Proto.Invalid_params
             "no capture with trace id %S (never captured, or evicted)" id))
    | Proto.Tslow ->
      let recent_ev, slow_ev = Trace.evictions () in
      Ok
        (Json.Obj
           [
             ( "slow",
               Json.List
                 (List.map
                    (fun (tr : Trace.t) ->
                      Json.Obj
                        [
                          ("id", Json.String tr.Trace.id);
                          ("duration_s", Json.Float tr.Trace.duration);
                          ("annotations", annotations_json tr);
                        ])
                    (Trace.slow ())) );
             ( "evictions",
               Json.Obj
                 [
                   ("recent", Json.Int recent_ev); ("slow", Json.Int slow_ev);
                 ] );
           ])

(* --- Stats ---------------------------------------------------------------------- *)

let registry_stats t = Registry.stats t.registry
let session_counters t = Session.counters t.store

(* Sweep on demand, at the service clock — the TCP server's ticker
   enqueues one of these per shard per interval so TTL expiry advances
   on every shard even when only one of them sees traffic. *)
let sweep_tick ?budget t =
  let now = t.now () in
  let swept = Session.sweep_step ?budget t.store ~now in
  ignore (consent_step ?budget t ~now);
  if Obs.enabled () then Obs.add obs_swept swept;
  swept

let stats_json t =
  let r = Registry.stats t.registry in
  let s = Session.counters t.store in
  let by_method =
    Hashtbl.fold (fun name m acc -> (name, m) :: acc) t.methods []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, m) ->
           ( name,
             Json.Obj
               [
                 ("count", Json.Int m.count);
                 ("errors", Json.Int m.errors);
                 ( "latency_s",
                   Json.Obj
                     [
                       ("total", Json.Float m.total_latency);
                       ("max", Json.Float m.max_latency);
                     ] );
               ] ))
  in
  let records, stored_values =
    fold_ledgers t
      (fun _ ledger (records, values) ->
        (records + Ledger.size ledger, values + Ledger.stored_values ledger))
      (0, 0)
  in
  Json.Obj
    ([
      ( "requests",
        Json.Obj
          [ ("total", Json.Int t.requests); ("by_method", Json.Obj by_method) ]
      );
      ( "registry",
        Json.Obj
          [
            ("size", Json.Int r.Registry.size);
            ("capacity", Json.Int r.Registry.capacity);
            ("hits", Json.Int r.Registry.hits);
            ("misses", Json.Int r.Registry.misses);
            ("evictions", Json.Int r.Registry.evictions);
          ] );
      ( "sessions",
        Json.Obj
          [
            ("active", Json.Int s.Session.active);
            ("created", Json.Int s.Session.created);
            ("expired", Json.Int s.Session.expired);
            ("submitted", Json.Int t.submitted);
          ] );
      ( "ledger",
        Json.Obj
          [
            ("rule_sets", Json.Int (ledger_count t));
            ("records", Json.Int records);
            ("stored_values", Json.Int stored_values);
          ] );
    ]
    (* Like the tenants section: only once a revocation or expiry has
       happened, so pre-lifecycle transcripts keep their bytes. *)
    @ (let c = Consent.counters t.consents in
       if c.Consent.revoked = 0 && c.Consent.expired = 0 && c.Consent.pending = 0
       then []
       else
         [
           ( "consent",
             Json.Obj
               [
                 ("revoked", Json.Int c.Consent.revoked);
                 ("expired", Json.Int c.Consent.expired);
                 ("pending", Json.Int c.Consent.pending);
               ] );
         ])
    (* The tenants section appears only once a tenant exists, so
       single-tenant deployments keep their pre-tenancy stats bytes. *)
    @
    if Tenant.count t.tenants = 0 then []
    else
      let tt = Tenant.totals t.tenants in
      let by_tenant =
        List.map
          (fun (info : Tenant.info) ->
            ( info.Tenant.info_name,
              Json.Obj
                [
                  ("versions", Json.Int info.Tenant.versions);
                  ("active_version", Json.Int info.Tenant.active);
                  ("state", Json.String (Tenant.state_name info.Tenant.state));
                  ("quota", Json.Int info.Tenant.quota);
                  ("sessions_active", Json.Int info.Tenant.sessions_active);
                  ("sessions_created", Json.Int info.Tenant.sessions_created);
                  ("submitted", Json.Int info.Tenant.submitted);
                ] ))
          (Tenant.infos t.tenants)
      in
      [
        ( "tenants",
          Json.Obj
            [
              ("count", Json.Int tt.Tenant.tenants);
              ("builds", Json.Int tt.Tenant.builds);
              ("build_failures", Json.Int tt.Tenant.build_failures);
              ("building", Json.Int tt.Tenant.building);
              ("by_tenant", Json.Obj by_tenant);
            ] );
      ])

(* --- Dispatch --------------------------------------------------------------------- *)

let handle_request t request ~now =
  match request with
  | Proto.Get_report { session; valuation } ->
    get_report t ~session ~valuation ~now
  | Proto.Watch _ -> Ok (watch_frame t ~now)
  | _ ->
    Result.map
      (fun json -> Tree json)
      (match request with
      | Proto.Get_report _ | Proto.Watch _ -> assert false (* handled above *)
      | Proto.Publish_rules { rules; tenant; quota } ->
        publish_rules t ~rules ~tenant ~quota ~now
      | Proto.Update_rules { tenant; rules; quota } ->
        update_tenant t ~name:tenant ~quota rules ~now
      | Proto.New_session rules -> new_session t rules ~now
      | Proto.Choose_option { session; choice } ->
        choose_option t ~session ~choice ~now
      | Proto.Submit_form { session } -> submit_form t ~session ~now
      | Proto.Revoke { session } -> revoke t ~session ~now
      | Proto.Expire { session; after } -> expire t ~session ~after ~now
      | Proto.Audit rules -> audit t rules
      | Proto.Tenant_info { name; wait } -> tenant_info t ~name ~wait
      | Proto.Stats -> Ok (stats_json t)
      | Proto.Metrics format -> Ok (metrics_payload t ~now format)
      | Proto.Trace_req { query; format } -> trace_payload query format)

(* Which tenant a request belongs to, for per-tenant metrics and SLOs:
   explicitly named tenants directly, session-bearing requests through
   the session's owner (one non-mutating lookup, only taken when
   observability is on). *)
let tenant_of_request t = function
  | Proto.New_session (Proto.Tenant name)
  | Proto.Publish_rules { tenant = Some name; _ }
  | Proto.Update_rules { tenant = name; _ } -> Some name
  | Proto.Get_report { session; _ }
  | Proto.Choose_option { session; _ }
  | Proto.Submit_form { session }
  | Proto.Revoke { session }
  | Proto.Expire { session; _ } ->
    Option.bind (Session.peek t.store session) (fun s -> s.Session.tenant)
  | _ -> None

let record_method t name ~latency ~failed =
  let m =
    match Hashtbl.find_opt t.methods name with
    | Some m -> m
    | None ->
      let m =
        { count = 0; errors = 0; total_latency = 0.; max_latency = 0. }
      in
      Hashtbl.add t.methods name m;
      m
  in
  m.count <- m.count + 1;
  if failed then m.errors <- m.errors + 1;
  m.total_latency <- m.total_latency +. latency;
  m.max_latency <- Float.max m.max_latency latency

(* Identifier annotations only: sessions, digests and source names go on
   the capture; rule text and valuations never do (DESIGN.md §12). *)
let annotate_request request =
  (match request with
  | Proto.Get_report { session; _ }
  | Proto.Choose_option { session; _ }
  | Proto.Submit_form { session }
  | Proto.Revoke { session }
  | Proto.Expire { session; _ } ->
    Trace.annotate "session" (Trace.String session)
  | Proto.Publish_rules _ | Proto.Update_rules _ | Proto.New_session _
  | Proto.Audit _ | Proto.Tenant_info _ | Proto.Stats | Proto.Metrics _
  | Proto.Trace_req _ | Proto.Watch _ -> ());
  (match request with
  | Proto.Publish_rules { tenant = Some name; _ }
  | Proto.Update_rules { tenant = name; _ }
  | Proto.Tenant_info { name = Some name; _ } ->
    Trace.annotate "tenant" (Trace.String name)
  | _ -> ());
  match request with
  | Proto.Publish_rules { rules = r; _ }
  | Proto.Update_rules { rules = r; _ }
  | Proto.New_session r
  | Proto.Audit r -> (
    match r with
    | Proto.Digest d -> Trace.annotate "digest" (Trace.String d)
    | Proto.Source s -> Trace.annotate "source" (Trace.String s)
    | Proto.Tenant name -> Trace.annotate "tenant" (Trace.String name)
    | Proto.Text _ -> ())
  | _ -> ()

let handle_line t line =
  let start = t.now () in
  t.requests <- t.requests + 1;
  Obs.incr obs_requests;
  (* The AST-free scanner first (when the compiled path is on): it
     either agrees exactly with [Proto.decode] or declines, so the
     fallback — not the fast path — decides every error. *)
  let decoded =
    if t.compiled then
      match Proto.decode_fast line with
      | Some envelope -> Ok envelope
      | None -> Proto.decode line
    else Proto.decode line
  in
  let tracing = Trace.enabled () in
  (* A client-supplied trace id is echoed even with tracing off; with
     tracing on every request gets one, generated if absent. *)
  let trace_id =
    match decoded with
    | Ok { Proto.trace = Some tid; _ } | Error (_, Some tid, _) -> Some tid
    | _ -> if tracing then Some (Trace.generate_id ()) else None
  in
  let dispatch () =
    match decoded with
    | Error (id, _, e) ->
      if tracing then begin
        Trace.annotate "method" (Trace.String "invalid");
        Trace.annotate "error" (Trace.String (Proto.code_name e.Proto.code))
      end;
      (id, "invalid", Error e)
    | Ok { Proto.id; request; _ } ->
      let name = Proto.method_name request in
      if tracing then begin
        Trace.annotate "method" (Trace.String name);
        Trace.annotate "backend"
          (Trace.String (Engine.backend_name t.backend));
        annotate_request request
      end;
      let result = handle_request t request ~now:start in
      (if tracing then
         match result with
         | Error e ->
           Trace.annotate "error" (Trace.String (Proto.code_name e.Proto.code))
         | Ok _ -> ());
      (id, name, result)
  in
  let id, name, result =
    match trace_id with
    | Some tid -> Trace.run ~id:tid dispatch
    | None -> dispatch ()
  in
  let response =
    match result with
    | Ok (Tree payload) -> Proto.ok_response ~id ?trace:trace_id payload
    | Ok (Rendered payload) ->
      Proto.ok_response_text ~id ?trace:trace_id payload
    | Error e -> Proto.error_response ~id ?trace:trace_id e
  in
  let finish = t.now () in
  (* Sweep after the handler, so an expired session's own lookup still
     answers [session_expired] before the sweep turns it into an unknown
     id for everyone else. The sweep is incremental — a bounded number
     of sessions per request — so abandoned sessions are reclaimed in
     amortized O(budget) instead of a full O(sessions) scan per line. *)
  let swept = Session.sweep_step t.store ~now:finish in
  ignore (consent_step t ~now:finish);
  let latency = finish -. start in
  let failed = Result.is_error result in
  record_method t name ~latency ~failed;
  if Obs.enabled () then begin
    Obs.add obs_swept swept;
    if failed then Obs.incr obs_errors;
    Obs.observe (obs_latency name) latency;
    Slo.record slo name ~now:finish ~latency ~error:failed;
    match Result.map (fun e -> tenant_of_request t e.Proto.request) decoded with
    | Ok (Some tn) ->
      Obs.incr
        (Obs.counter ~labels:[ ("tenant", tn) ] "pet_tenant_requests_total");
      if failed then
        Obs.incr
          (Obs.counter ~labels:[ ("tenant", tn) ] "pet_tenant_errors_total");
      Obs.observe
        (Obs.histogram ~labels:[ ("tenant", tn) ] "pet_tenant_request_seconds")
        latency;
      Slo.record slo ("tenant:" ^ tn) ~now:finish ~latency ~error:failed
    | Ok None | Error _ -> ()
  end;
  response
