type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; size = 0; dummy }

let size v = v.size
let is_empty v = v.size = 0

let check v i =
  if i < 0 || i >= v.size then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (size %d)" i v.size)

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then grow v;
  Array.unsafe_set v.data v.size x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop: empty";
  v.size <- v.size - 1;
  let x = Array.unsafe_get v.data v.size in
  Array.unsafe_set v.data v.size v.dummy;
  x

let last v =
  if v.size = 0 then invalid_arg "Vec.last: empty";
  Array.unsafe_get v.data (v.size - 1)

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink";
  for i = n to v.size - 1 do
    Array.unsafe_set v.data i v.dummy
  done;
  v.size <- n

let clear v = shrink v 0

let iter f v =
  for i = 0 to v.size - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.size && (p (Array.unsafe_get v.data i) || go (i + 1)) in
  go 0

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.size - 1 do
    let x = Array.unsafe_get v.data i in
    if p x then begin
      Array.unsafe_set v.data !j x;
      incr j
    end
  done;
  shrink v !j

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let of_list ~dummy xs =
  let v = create ~capacity:(max 1 (List.length xs)) ~dummy () in
  List.iter (push v) xs;
  v
