type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let min_level = ref Info
let set_level l = min_level := l
let level () = !min_level

let json = ref false
let set_json b = json := b

let sink = ref prerr_endline
let set_sink f = sink := f

(* One emitting domain at a time, so concurrent shards never interleave
   characters within a line. *)
let sink_m = Mutex.create ()

(* Reuse the trace exporter's escaping so both captures and logs render
   strings identically. *)
let escape = Trace.json_escape

let json_value = function
  | Trace.String s -> Printf.sprintf {|"%s"|} (escape s)
  | Trace.Int i -> string_of_int i
  | Trace.Bool b -> string_of_bool b
  | Trace.Float f -> Printf.sprintf "%.6f" f

let human_value = function
  | Trace.String s -> Printf.sprintf "%S" s
  | Trace.Int i -> string_of_int i
  | Trace.Bool b -> string_of_bool b
  | Trace.Float f -> Printf.sprintf "%.6f" f

let log lvl ?(fields = []) event =
  if rank lvl >= rank !min_level then begin
    let trace = Trace.current () in
    let line =
      if !json then
        let buf = Buffer.create 128 in
        let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        addf {|{"ts":%.6f,"level":"%s","event":"%s"|} (Metrics.now ())
          (level_name lvl) (escape event);
        Option.iter (fun id -> addf {|,"trace":"%s"|} (escape id)) trace;
        List.iter
          (fun (k, v) -> addf {|,"%s":%s|} (escape k) (json_value v))
          fields;
        Buffer.add_char buf '}';
        Buffer.contents buf
      else
        let buf = Buffer.create 128 in
        Buffer.add_string buf
          (Printf.sprintf "[%s] %s" (level_name lvl) event);
        Option.iter
          (fun id -> Buffer.add_string buf (Printf.sprintf " trace=%s" id))
          trace;
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf
              (Printf.sprintf " %s=%s" k (human_value v)))
          fields;
        Buffer.contents buf
    in
    Mutex.lock sink_m;
    Fun.protect ~finally:(fun () -> Mutex.unlock sink_m) (fun () ->
        !sink line)
  end

let debug ?fields event = log Debug ?fields event
let info ?fields event = log Info ?fields event
let warn ?fields event = log Warn ?fields event
let error ?fields event = log Error ?fields event
