Multi-tenant form serving: `publish_rules` with a `tenant` parameter
creates a named tenant whose artifacts (engine, atlas, compiled table)
are built on a background builder domain — the publish response comes
back immediately in state "building", provably before the build ran.
`tenant {"wait":true}` is the deploy barrier; `update_rules` appends a
new version and hot-swaps it in once built, while sessions opened
earlier stay pinned to the version they enrolled under.

Version 2 changes which benefit the valuation 101 earns (v1 grants
discount, v2 grants updates), so the pinned session's byte-identical
replay below is a real guarantee, not a coincidence:

  $ ../../bin/pet.exe serve --stdio --deterministic <<'REQUESTS' > transcript
  > {"pet":1,"id":1,"method":"publish_rules","params":{"rules":"form email newsletter student\nbenefits discount updates\nrule discount := student\nrule updates := email & newsletter","tenant":"acme","quota":2}}
  > {"pet":1,"id":2,"method":"tenant","params":{"name":"acme","wait":true}}
  > {"pet":1,"id":3,"method":"new_session","params":{"tenant":"acme"}}
  > {"pet":1,"id":4,"method":"get_report","params":{"session":"s0","valuation":"101"}}
  > {"pet":1,"id":5,"method":"update_rules","params":{"tenant":"acme","rules":"form email newsletter student\nbenefits discount updates\nrule discount := student & newsletter\nrule updates := email"}}
  > {"pet":1,"id":6,"method":"tenant","params":{"name":"acme","wait":true}}
  > {"pet":1,"id":4,"method":"get_report","params":{"session":"s0","valuation":"101"}}
  > {"pet":1,"id":7,"method":"new_session","params":{"tenant":"acme"}}
  > {"pet":1,"id":8,"method":"get_report","params":{"session":"s1","valuation":"101"}}
  > {"pet":1,"id":9,"method":"new_session","params":{"tenant":"acme"}}
  > {"pet":1,"id":10,"method":"new_session","params":{"tenant":"nobody"}}
  > {"pet":1,"id":11,"method":"tenant","params":{}}
  > {"pet":1,"id":12,"method":"tenant","params":{"name":"acme"}}
  > REQUESTS
  $ cat transcript
  {"pet":1,"id":1,"trace":"t0","ok":{"tenant":"acme","version":1,"digest":"7bda3a46cd5fcacc18351889681b4f73","state":"building"}}
  {"pet":1,"id":2,"trace":"t1","ok":{"tenant":"acme","versions":1,"active":1,"digest":"7bda3a46cd5fcacc18351889681b4f73","state":"ready","quota":2,"sessions":{"active":0,"created":0,"submitted":0}}}
  {"pet":1,"id":3,"trace":"t2","ok":{"session":"s0","tenant":"acme","version":1,"digest":"7bda3a46cd5fcacc18351889681b4f73"}}
  {"pet":1,"id":4,"trace":"t3","ok":{"valuation":"101","granted":["discount"],"options":[{"mas":"__1","benefits":["discount"],"po_blank":2,"po_sm":2,"po_weighted":null,"published":[{"student":true}],"deduced":[],"protected":["email","newsletter"],"crowd":3,"recommended":true}],"minimization_ratio":0.66666666666666663}}
  {"pet":1,"id":5,"trace":"t4","ok":{"tenant":"acme","version":2,"digest":"3c651e7763973108ae437ab1bb63726f","state":"building"}}
  {"pet":1,"id":6,"trace":"t5","ok":{"tenant":"acme","versions":2,"active":2,"digest":"3c651e7763973108ae437ab1bb63726f","state":"ready","quota":2,"sessions":{"active":1,"created":1,"submitted":0}}}
  {"pet":1,"id":4,"trace":"t6","ok":{"valuation":"101","granted":["discount"],"options":[{"mas":"__1","benefits":["discount"],"po_blank":2,"po_sm":2,"po_weighted":null,"published":[{"student":true}],"deduced":[],"protected":["email","newsletter"],"crowd":3,"recommended":true}],"minimization_ratio":0.66666666666666663}}
  {"pet":1,"id":7,"trace":"t7","ok":{"session":"s1","tenant":"acme","version":2,"digest":"3c651e7763973108ae437ab1bb63726f"}}
  {"pet":1,"id":8,"trace":"t8","ok":{"valuation":"101","granted":["updates"],"options":[{"mas":"1__","benefits":["updates"],"po_blank":2,"po_sm":2,"po_weighted":null,"published":[{"email":true}],"deduced":[],"protected":["newsletter","student"],"crowd":3,"recommended":true}],"minimization_ratio":0.66666666666666663}}
  {"pet":1,"id":9,"trace":"t9","error":{"code":"quota_exceeded","message":"tenant \"acme\" is at its quota of 2 active sessions"}}
  {"pet":1,"id":10,"trace":"t10","error":{"code":"unknown_tenant","message":"unknown tenant \"nobody\" (publish_rules with a \"tenant\" parameter creates it)"}}
  {"pet":1,"id":11,"trace":"t11","ok":{"count":1,"tenants":["acme"]}}
  {"pet":1,"id":12,"trace":"t12","ok":{"tenant":"acme","versions":2,"active":2,"digest":"3c651e7763973108ae437ab1bb63726f","state":"ready","quota":2,"sessions":{"active":2,"created":2,"submitted":0}}}

The two id:4 responses — one before the hot swap, one after — are
byte-identical once the per-request trace id is stripped: the pinned
session never observed the swap, even though the same valuation on the
fresh v2 session (id:8) earned a different benefit:

  $ sed -n '4p' transcript | sed 's/"trace":"t[0-9]*",//' > before
  $ sed -n '7p' transcript | sed 's/"trace":"t[0-9]*",//' > after
  $ cmp before after && echo pinned session unaffected by swap
  pinned session unaffected by swap

The corpus generator that feeds the multi-tenant bench and fuzz gates
is a pure function of the seed:

  $ ../../bin/pet.exe corpus scenario --seed 1 --count 4 --hi 12
  t000-loan_application        size=10 share= 48.0% digest=6a33e7d39d8a5b63358d6a92e1163f4b
  t001-loan_application        size=8  share= 24.0% digest=c904bdfe33fcae9ab35f5dcfdb5fb829
  t002-survey                  size=12 share= 16.0% digest=fe73f8990274eb8cf26387ef57fba5fb
  t003-survey                  size=9  share= 12.0% digest=a72ced6cfd9f93573d0dc0525c89b774

Three tenants at mixed versions over TCP, then kill -9: recovery must
come back at the latest durable version of every tenant, with consent
ledgers intact.

  $ ../../bin/pet.exe serve --tcp 0 --domains 2 --deterministic --data-dir data --port-file port 2>server.log & SRV=$!
  $ for i in $(seq 1 100); do [ -s port ] && break; sleep 0.1; done
  $ ../../bin/pet.exe ping 127.0.0.1:$(cat port) <<'REQUESTS'
  > {"pet":1,"id":1,"method":"publish_rules","params":{"rules":"form a b\nbenefits x\nrule x := a & b","tenant":"alpha"}}
  > {"pet":1,"id":2,"method":"publish_rules","params":{"rules":"form c d\nbenefits y\nrule y := c","tenant":"beta"}}
  > {"pet":1,"id":3,"method":"publish_rules","params":{"rules":"form e f\nbenefits z\nrule z := e & f","tenant":"gamma"}}
  > {"pet":1,"id":4,"method":"update_rules","params":{"tenant":"beta","rules":"form c d\nbenefits y\nrule y := c & d"}}
  > {"pet":1,"id":5,"method":"tenant","params":{"name":"alpha","wait":true}}
  > {"pet":1,"id":6,"method":"tenant","params":{"name":"beta","wait":true}}
  > {"pet":1,"id":7,"method":"new_session","params":{"tenant":"alpha"}}
  > {"pet":1,"id":8,"method":"get_report","params":{"session":"s0","valuation":"11"}}
  > {"pet":1,"id":9,"method":"choose_option","params":{"session":"s0","option":0}}
  > {"pet":1,"id":10,"method":"submit_form","params":{"session":"s0"}}
  > {"pet":1,"id":11,"method":"new_session","params":{"tenant":"beta"}}
  > {"pet":1,"id":12,"method":"audit","params":{"tenant":"alpha"}}
  > quit
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"tenant":"alpha","version":1,"digest":"0f14651f658c4b19ad2f4a9f414a9f71","state":"building"}}
  {"pet":1,"id":2,"trace":"t1","ok":{"tenant":"beta","version":1,"digest":"8ab785eb5fcc0ede5bfdf8d9a3bc313d","state":"building"}}
  {"pet":1,"id":3,"trace":"t2","ok":{"tenant":"gamma","version":1,"digest":"a5586f4f72205b1468bc5cb1bdf6335e","state":"building"}}
  {"pet":1,"id":4,"trace":"t3","ok":{"tenant":"beta","version":2,"digest":"95b92d36ba9f408739892ca751e58e01","state":"building"}}
  {"pet":1,"id":5,"trace":"t4","ok":{"tenant":"alpha","versions":1,"active":1,"digest":"0f14651f658c4b19ad2f4a9f414a9f71","state":"ready","quota":0,"sessions":{"active":0,"created":0,"submitted":0}}}
  {"pet":1,"id":6,"trace":"t5","ok":{"tenant":"beta","versions":2,"active":2,"digest":"95b92d36ba9f408739892ca751e58e01","state":"ready","quota":0,"sessions":{"active":0,"created":0,"submitted":0}}}
  {"pet":1,"id":7,"trace":"t6","ok":{"session":"s0","tenant":"alpha","version":1,"digest":"0f14651f658c4b19ad2f4a9f414a9f71"}}
  {"pet":1,"id":8,"trace":"t7","ok":{"valuation":"11","granted":["x"],"options":[{"mas":"11","benefits":["x"],"po_blank":0,"po_sm":0,"po_weighted":null,"published":[{"a":true},{"b":true}],"deduced":[],"protected":[],"crowd":1,"recommended":true}],"minimization_ratio":0}}
  {"pet":1,"id":9,"trace":"t8","ok":{"mas":"11","benefits":["x"]}}
  {"pet":1,"id":10,"trace":"t9","ok":{"grant":0,"form":"11","benefits":["x"]}}
  {"pet":1,"id":11,"trace":"t10","ok":{"session":"s1","tenant":"beta","version":2,"digest":"95b92d36ba9f408739892ca751e58e01"}}
  {"pet":1,"id":12,"trace":"t11","ok":{"digest":"0f14651f658c4b19ad2f4a9f414a9f71","records":1,"stored_values":2,"failures":[]}}

Nothing acknowledged is lost — the WAL holds the tenant versions and
the grant, and no decoded event carries a raw valuation:

  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null
  [137]
  $ ../../bin/pet.exe store verify data
  ok: 9 record(s) in 1 file(s); every checksum holds and no decoded event carries a raw valuation (R2 on disk)

Restart: every tenant is back at its latest durable version (beta at
version 2), the recovered session count is right, and the consent
ledger still answers audits:

  $ rm -f port
  $ ../../bin/pet.exe serve --tcp 0 --domains 2 --deterministic --data-dir data --port-file port 2>server2.log & SRV=$!
  $ for i in $(seq 1 100); do [ -s port ] && break; sleep 0.1; done
  $ ../../bin/pet.exe ping 127.0.0.1:$(cat port) <<'REQUESTS'
  > {"pet":1,"id":1,"method":"tenant","params":{}}
  > {"pet":1,"id":2,"method":"tenant","params":{"name":"beta"}}
  > {"pet":1,"id":3,"method":"tenant","params":{"name":"alpha"}}
  > {"pet":1,"id":4,"method":"new_session","params":{"tenant":"gamma"}}
  > {"pet":1,"id":5,"method":"audit","params":{"tenant":"alpha"}}
  > quit
  > REQUESTS
  {"pet":1,"id":1,"trace":"t0","ok":{"count":3,"tenants":["alpha","beta","gamma"]}}
  {"pet":1,"id":2,"trace":"t1","ok":{"tenant":"beta","versions":2,"active":2,"digest":"95b92d36ba9f408739892ca751e58e01","state":"ready","quota":0,"sessions":{"active":1,"created":1,"submitted":0}}}
  {"pet":1,"id":3,"trace":"t2","ok":{"tenant":"alpha","versions":1,"active":1,"digest":"0f14651f658c4b19ad2f4a9f414a9f71","state":"ready","quota":0,"sessions":{"active":1,"created":1,"submitted":0}}}
  {"pet":1,"id":4,"trace":"t3","ok":{"session":"s3","tenant":"gamma","version":1,"digest":"a5586f4f72205b1468bc5cb1bdf6335e"}}
  {"pet":1,"id":5,"trace":"t4","ok":{"digest":"0f14651f658c4b19ad2f4a9f414a9f71","records":1,"stored_values":2,"failures":[]}}
  $ kill -9 $SRV
  $ wait $SRV 2>/dev/null
  [137]
