(** The global bipartite graph of an exposure problem: every MAS of every
    realistic eligible valuation on one side, the valuations that can play
    each MAS on the other. This is the structure behind Tables 2-4 of the
    paper and the input of the game-theoretic layer.

    Players of a MAS are counted as in the paper: all total extensions
    with the same benefit set, without re-filtering by [R_ADD] ("we
    consider that all valuations are realistic", Section 4.1). *)

type t

val build : ?mode:Algorithm1.mode -> Pet_rules.Engine.t -> t
(** Enumerate the realistic eligible valuations, run Algorithm 1 on each,
    and assemble the deduplicated MAS set with its edges. [mode]
    defaults to [Chain] (the paper's algorithm).
    @raise Invalid_argument on forms above 24 predicates — enumeration is
    infeasible there; {!Symbolic.build} covers the global statistics. *)

val engine : t -> Pet_rules.Engine.t

val mas_count : t -> int
val mas : t -> int -> Algorithm1.choice
val mas_list : t -> Algorithm1.choice list
(** In the paper's lexicographic order. *)

val find_mas : t -> Pet_valuation.Partial.t -> int option

val player_count : t -> int
(** "Number of valuations" in Table 2: distinct valuations attached to at
    least one MAS. *)

val player : t -> int -> Pet_valuation.Total.t
val find_player : t -> Pet_valuation.Total.t -> int option

val choices_of_player : t -> int -> int list
(** MAS indices the player can play, ascending. *)

val players_of_mas : t -> int -> int list
(** Player indices that can play the MAS — the "potential" crowd. *)

val forced_players_of_mas : t -> int -> int list
(** Players whose only choice is this MAS — the crowd lower bound reported
    in brackets in Tables 3 and 4. *)

val choice_distribution : t -> (int * int) list
(** [(k, n)] pairs: [n] valuations have exactly [k] MAS to choose from;
    ascending [k]. Rows 4+ of Table 2. *)

val domain_size_range : t -> int * int
(** Minimum and maximum number of predicates per MAS (Table 2 row 3). *)

val pp_summary : t Fmt.t
