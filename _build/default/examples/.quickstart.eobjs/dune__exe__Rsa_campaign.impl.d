examples/rsa_campaign.ml: Fmt Fun List Pet_casestudies Pet_game Pet_minimize Pet_pet Pet_rules Pet_valuation
