lib/logic/parse.ml: Formula List Printf String
