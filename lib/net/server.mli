(** The TCP front of the collection service.

    One process, [domains] shards: each shard is an OCaml domain that
    owns a disjoint slice of the session space ({!Shard_map} decides
    ownership from the id alone), runs its own [Service.t] with no
    locking, and funnels its durable events through the single
    {!Group_commit} writer domain. Connection handling stays on the main
    domain as plain threads: a reader thread per connection parses
    nothing, routes each request line to its shard (round-robin when the
    line names no session) and moves on to the next line; the shard
    writes the response back to the socket itself once the request's
    events are committed. A connection that pipelines requests may
    therefore see responses out of order when they land on different
    shards — the echoed ["id"] correlates them; a client that waits for
    each response before sending the next sees strict ordering.

    Replies are durable-before-reply: a request whose handling emitted
    WAL events is only acknowledged after its batch is fsynced.

    Rule-set texts and grant ledgers are shared across shards (see
    {!Pet_server.Shared}); compiled engines are not — each shard
    recompiles from the shared canonical text on first use, so BDD
    memo tables are never touched by two domains. Raw valuations never
    cross a domain boundary: they live inside the owning shard's
    session and only the chosen option's digested grant reaches the
    shared ledger or the wire. *)

type t

val start :
  ?backend:Pet_rules.Engine.backend ->
  ?compiled:bool ->
  ?payoff:Pet_game.Payoff.kind ->
  ?capacity:int ->
  ?ttl:float ->
  ?tenant_quota:int ->
  ?resolve:(string -> string option) ->
  ?store:Pet_store.Store.t ->
  ?recovery:Pet_server.Persist.event list ->
  ?sweep_interval:float ->
  ?flight:Pet_store.Flight_log.t ->
  domains:int ->
  port:int ->
  now:(unit -> float) ->
  unit ->
  (t, string) result
(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port — read it
    back with {!port}). [backend] and [compiled] are forwarded to every
    per-shard {!Pet_server.Service.create}, so the compiled fast path's
    answer tables are per-shard, like the engines (they memoize rendered
    responses and are never shared across domains). Replay [recovery]
    into the owning shards, then
    spawn the shard domains, the writer domain (when [store] is given),
    the acceptor thread and the sweep ticker ([sweep_interval <= 0.]
    disables it; use with deterministic clocks). The caller keeps
    ownership of [store] and closes it after {!stop}. [Error] only on
    socket failures; replay errors are logged and skipped, as in stdio
    recovery.

    Every shard shares one process-wide tenant registry (default
    per-tenant session cap [tenant_quota], 0 = unlimited), so a tenant
    published through any connection is servable on every shard; its
    background builder domain is stopped by {!stop}.

    [flight] attaches the flight recorder: the sweep ticker also
    enqueues one snapshot per interval (assembled on shard 0, stamped
    with the {!Pet_store.Store.position} WAL frontier, journaled by the
    writer domain via {!Group_commit.submit_flight}), a fatal WAL
    failure writes its reason to the journal directly, and [watch]
    subscriptions stream frames without touching non-watch traffic
    (their lines are intercepted on the connection thread by a
    substring scan + full decode; everything else is forwarded
    byte-identically). The caller owns and closes the journal after
    {!stop} — typically after a final {!flight_dump}. *)

val port : t -> int
(** The bound port (useful with [port:0]). *)

val wait : t -> (unit, string) result
(** Block until {!stop} is called ([Ok ()]) or a shard hits a fatal
    write-ahead-log failure ([Error reason]). *)

val stop : t -> unit
(** Wake the acceptor, drain and join the shard domains, stop the
    writer (committing anything queued), join the ticker. Idempotent.
    Connections still open are not waited for; their threads die with
    the process or on the next client read. *)

val flight_dump : t -> event:string -> unit
(** Append an [event] lifecycle record, any not-yet-journaled slow
    traces and a final snapshot to the flight journal (no-op without
    [flight]). Call after {!stop} for the at-exit dump. *)

val batch_stats : t -> Group_commit.stats option
(** Group-commit totals, [None] when running without a store. *)

val session_totals : t -> int * int * int
(** [(active, created, expired)] summed across shards. Exact when the
    server is quiescent; monitoring-grade otherwise. *)

val shard_services : t -> Pet_server.Service.t array
(** The per-shard services, index = shard. For tests and stats
    endpoints; do not mutate while the shard domains run. *)
