type conjunction = Literal.t list
type t = conjunction list

let normalize_conjunction lits =
  let sorted = List.sort_uniq Literal.compare lits in
  let contradictory =
    List.exists (fun l -> List.mem (Literal.negate l) sorted) sorted
  in
  if contradictory then None else Some sorted

let subsumes c c' = List.for_all (fun l -> List.mem l c') c

let remove_subsumed dnf =
  let keep c =
    not
      (List.exists
         (fun c' -> (not (List.equal Literal.equal c c')) && subsumes c' c)
         dnf)
  in
  (* [sort_uniq] first so that two equal conjunctions don't knock each
     other out through the strict-subsumption test. *)
  List.filter keep (List.sort_uniq Stdlib.compare dnf)

(* Distribution over an NNF formula. Conjunctions are lists of literals;
   [None]-producing (contradictory) branches are pruned eagerly. *)
let of_formula f =
  let rec go = function
    | Formula.True -> [ [] ]
    | Formula.False -> []
    | Formula.Var x -> [ [ Literal.pos x ] ]
    | Formula.Not (Formula.Var x) -> [ [ Literal.neg x ] ]
    | Formula.Or (a, b) -> go a @ go b
    | Formula.And (a, b) ->
      let das = go a and dbs = go b in
      List.concat_map
        (fun ca ->
          List.filter_map
            (fun cb -> normalize_conjunction (ca @ cb))
            dbs)
        das
    | Formula.Not _ | Formula.Implies _ | Formula.Iff _ ->
      assert false (* input is NNF *)
  in
  remove_subsumed (go (Nnf.of_formula f))

let conjunction_to_formula c = Formula.conj (List.map Literal.to_formula c)

let to_formula dnf = Formula.disj (List.map conjunction_to_formula dnf)

let conjunction_holds rho c = List.for_all (Literal.holds rho) c
let holds rho dnf = List.exists (conjunction_holds rho) dnf

module Sset = Set.Make (String)

let vars dnf =
  let add acc (l : Literal.t) = Sset.add l.var acc in
  Sset.elements
    (List.fold_left (fun acc c -> List.fold_left add acc c) Sset.empty dnf)

let pp_conjunction ppf = function
  | [] -> Fmt.string ppf "true"
  | c -> Fmt.(list ~sep:(any " & ") Literal.pp) ppf c

let pp ppf = function
  | [] -> Fmt.string ppf "false"
  | dnf -> Fmt.(list ~sep:(any " | ") pp_conjunction) ppf dnf
