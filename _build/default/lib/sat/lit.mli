(** Solver literals. A literal packs a 0-based variable index and a sign
    into one integer: [2*v] is the positive literal of variable [v] and
    [2*v + 1] its negation. *)

type t = int

val make : int -> bool -> t
(** [make v sign] — [sign = true] for the positive literal. *)

val var : t -> int
val sign : t -> bool
val negate : t -> t

val of_dimacs : int -> t
(** [of_dimacs k] maps the DIMACS literal [k] (non-zero; variable [|k|],
    1-based) to a solver literal. *)

val to_dimacs : t -> int
val pp : t Fmt.t
