(** Consent-lifecycle state: which sessions revoked, which grants carry
    an expiry horizon, and where (ledger key, grant id) the archived
    record lives.

    One entry per session that has something at stake. Entries hold
    identifiers only — session id, ledger key, grant id, timestamps —
    never a form, so they are kept for the lifetime of the archive
    (like the ledgers themselves) and a respondent can revoke long
    after the session was swept by its TTL.

    In a sharded deployment one store is shared by every shard, behind
    {!Shared}: a revocation must reach the grant wherever it was
    recorded. The mutex guards the table and the incremental sweep
    cursor; per-entry mutations are effectively single-writer (requests
    route by session id) and the sweep's ledger tombstoning is
    idempotent. *)

type entry = {
  session : string;
  mutable key : string;
      (** the ledger the session's grant lives in
          ({!Service.ledger_key}); [""] until known *)
  mutable tenant : string option;
  mutable grant_id : int option;
  mutable revoked_at : float option;
  mutable horizon : (float * float) option;  (** (expires_at, set_at) *)
  mutable expired : bool;
      (** the horizon was applied — the grant is tombstoned *)
}

type counters = { tracked : int; revoked : int; expired : int; pending : int }

type t

val create : unit -> t
val find : t -> string -> entry option

val register : t -> session:string -> ?key:string -> ?tenant:string -> unit -> entry
(** Find-or-create the entry for a session. An entry created keyless (a
    revocation replayed before any grant was seen) learns its key from
    the first caller that knows it. *)

val note_granted : entry -> int -> unit

val revoke : t -> entry -> at:float -> unit
(** Mark revoked (first call wins; later calls keep the original
    timestamp). The caller tombstones the ledger record itself. *)

val set_horizon : t -> entry -> horizon:float -> at:float -> unit
(** Arm (or move) the expiry horizon — the latest call wins, and the
    entry is queued so the next sweep step sees it. *)

val note_expired : t -> entry -> unit
(** The horizon was applied: its grant is now a tombstone. *)

val due : ?budget:int -> t -> now:float -> entry list
(** Armed entries whose horizon has passed, visiting at most [budget]
    (default 32) entries per call and resuming where the previous call
    stopped — the consent twin of {!Session.sweep_step}. The caller
    tombstones each entry's grant, then calls {!note_expired}; both
    happen outside this call so the ledger lock is never taken under
    the consent lock. *)

val all_due : t -> now:float -> entry list
(** Every armed entry past [now], unbudgeted — the post-recovery pass
    applying whatever horizons a crash interrupted. *)

val entries : t -> entry list
(** Every entry, ordered by (id length, id) — snapshot order. *)

val counters : t -> counters
