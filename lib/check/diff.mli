(** Differential testing across the four [Engine] backends.

    The [.mli] of {!Pet_rules.Engine} promises that [Brute], [Sat] and
    [Bdd] agree on every input; this module checks that promise head-on
    for one exposure problem:

    - the proof relation [w, R |= ·] — consistency, proven benefits and
      deduced literals — pointwise on seeded random partial valuations
      (and on every published MAS);
    - the full MAS atlas, compared as a canonicalized list of
      (MAS, benefits, potential crowd, forced crowd);
    - the Algorithm 2 equilibrium computed from each backend's atlas,
      move by move and payoff by payoff.

    The brute-force backend enumerates [2^blanks] completions per query,
    so it only joins entailment comparisons on valuations with at most
    [brute_blank_cap] blanks (default 12) and atlas comparisons on
    universes of at most [brute_atlas_cap] predicates (default 10);
    larger problems are still checked [Sat] against [Bdd]. *)

val default_samples : int
val default_brute_blank_cap : int
val default_brute_atlas_cap : int

val check :
  ?payoff:Pet_game.Payoff.kind ->
  ?samples:int ->
  ?seed:int ->
  ?brute_blank_cap:int ->
  ?brute_atlas_cap:int ->
  Pet_rules.Exposure.t ->
  Finding.report
(** Stages: ["diff/consistent"], ["diff/benefits"], ["diff/deduced"],
    ["diff/atlas"], ["diff/equilibrium"]. *)
