(** Durable events and the sink interface between the service and any
    persistence backend ({!Pet_store} in this repo, a no-op by default).

    Every state change the service must survive a restart is expressed
    as one of these events; the service emits them to its sink as the
    change commits, and recovery replays them through
    {!Service.apply_event}. The events are the durability boundary of
    requirement R2: a full valuation is {e representable in no event} —
    only rule texts, minimized forms ([mas]/[form] partial-valuation
    strings, possibly with blanks) and grants appear, so nothing a crash
    leaves on disk can contain more than the provider was ever allowed
    to keep. The [Reported] session state (the only state holding a raw
    valuation) is deliberately not persisted: such a session recovers as
    [Created] and the respondent re-requests the report. *)

module Json = Pet_pet.Json

type event =
  | Rules of { digest : string; text : string }
      (** A rule set entered service: [text] is the canonical rendering
          whose {!Registry.digest} is [digest]. Logged once per digest. *)
  | Tenant_published of {
      tenant : string;
      version : int;  (** monotonic per tenant, from 1 *)
      digest : string;
      text : string;  (** canonical rendering, as in {!Rules} *)
      quota : int option;
      at : float;
    }
      (** Tenant [tenant] accepted [version]: logged on the request path
          at publish/update time — before the background build runs — so
          the latest durable version is the latest {e accepted} one and
          recovery re-registers every tenant at its recorded version
          (rebuilding engines lazily). Subsumes {!Rules} for tenant
          texts. *)
  | Session_created of {
      id : string;
      digest : string;
      tenant : string option;
          (** set for sessions opened by tenant name; the field is
              omitted from the JSON when absent, so single-tenant logs
              keep their pre-tenancy bytes *)
      at : float;
    }
  | Session_chosen of {
      id : string;
      mas : string;  (** the minimized form, e.g. ["0_1_"] *)
      benefits : string list;
      at : float;
    }
  | Session_submitted of { id : string; grant_id : int; at : float }
  | Session_revoked of { id : string; at : float }
      (** The respondent withdrew consent at [at]: the session (if
          live) was purged and its archived grant (if any) tombstoned.
          From this point of the log on, no later record may
          re-establish the session's subvaluation — the property
          [pet audit] checks offline. *)
  | Session_expiry of { id : string; horizon : float; at : float }
      (** Consent granted by session [id] holds until [horizon]
          (absolute service time; recorded at [at]): once the clock
          passes it, the sweep tombstones the grant. Replay re-arms the
          horizon, so recovery applies expiries the crash interrupted. *)
  | Grant of {
      digest : string;
      grant_id : int;  (** sequential per (tenant, digest) ledger, from 0 *)
      form : string;  (** the archived minimized record; [""] when revoked *)
      benefits : string list;
      session : string option;
          (** the submitting session — the link a later
              {!Session_revoked}/{!Session_expiry} uses to reach this
              record; omitted from the JSON when absent, so
              pre-lifecycle logs keep their bytes *)
      tenant : string option;
          (** namespaces the grant ledger: two tenants publishing
              identical rules (same [digest]) keep separate archives
              and grant-id sequences *)
      revoked : bool;
          (** a tombstone (written by compaction): only the id slot
              survives, [form] is empty and must not be parsed *)
    }

val kind : event -> string
(** The wire tag: ["rules"], ["tenant_published"], ["session_created"],
    ["session_chosen"], ["session_submitted"], ["session_revoked"],
    ["session_expiry"] or ["grant"]. *)

val to_json : event -> Json.t
val of_json : Json.t -> (event, string) result
(** Inverse of {!to_json}; [Error] explains the first malformed field. *)

type sink = { emit : event -> unit }
(** Called synchronously after the state change it describes has been
    applied in memory and before the response is sent — a durable sink
    must have the event on stable storage when [emit] returns. *)

val null : sink
(** The no-op sink: today's pure in-memory service. *)
