(** The collection-service core: a pure request router over the PET
    workflow.

    One [Service.t] serves many concurrent respondent sessions over many
    published rule sets. It owns the compiled-engine {!Registry} (one
    {!Pet_pet.Workflow.provider} per distinct rule set, shared by every
    session), the {!Session} store (per-respondent state machines with
    TTL expiry, swept on every request), and one {!Pet_pet.Ledger} per
    rule set (archives survive engine evictions — the cache bounds
    compute, not the legally retained records).

    The core is transport-agnostic and deliberately synchronous:
    {!handle_line} maps one request line to one response line, so any
    driver — the [pet serve] stdin/stdout loop, a socket accept loop, a
    test harness — provides the I/O and, if it wants parallelism, the
    locking around a service instance. Determinism is preserved by
    injecting the clock: tests and cram transcripts pass a logical
    clock, production passes wall time. *)

type t

val create :
  ?backend:Pet_rules.Engine.backend ->
  ?payoff:Pet_game.Payoff.kind ->
  ?capacity:int ->
  ?ttl:float ->
  ?resolve:(string -> string option) ->
  now:(unit -> float) ->
  unit ->
  t
(** [capacity] bounds the engine registry (default 16); [ttl] is the
    session idle timeout in seconds (default 3600, [<= 0.] disables);
    [resolve] maps [source] names in requests to rule-spec text (the CLI
    wires the built-in case studies here); [now] is called exactly twice
    per request (entry and exit), so a logical clock advancing 1.0 per
    call yields fully deterministic latencies and expiry. *)

val handle_line : t -> string -> string
(** Process one request line, return the response line (no trailing
    newline). Never raises: every failure becomes a structured protocol
    error. Also sweeps expired sessions and updates the per-endpoint
    counters/latency aggregates reported by the [stats] method. *)

val stats_json : t -> Pet_pet.Json.t
(** The [stats] payload: request totals and per-method count/error/latency
    aggregates, registry size/hits/misses/evictions, session
    active/created/expired/submitted counts, and archive totals. *)

val registry_stats : t -> Registry.stats
