(** Decision process rules (Definition 3.9): a CPL equivalence whose
    left-hand side is a DNF over form predicates and whose right-hand side
    is a single benefit predicate. *)

type t = { dnf : Pet_logic.Dnf.t; benefit : string }

val make : benefit:string -> Pet_logic.Dnf.t -> t
val of_formula : benefit:string -> Pet_logic.Formula.t -> t
(** Convert an arbitrary eligibility formula to DNF first. *)

val to_formula : t -> Pet_logic.Formula.t
(** The equivalence [dnf <-> benefit]. *)

val conjunctions : t -> Pet_logic.Dnf.conjunction list
val triggered_by : (string -> bool) -> t -> bool
(** Whether the left-hand side holds under an assignment of the form
    predicates. *)

val pp : t Fmt.t
