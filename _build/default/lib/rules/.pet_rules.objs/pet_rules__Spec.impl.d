lib/rules/spec.ml: Exposure Fmt List Pet_logic Pet_valuation Printf Rule String
